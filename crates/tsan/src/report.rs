//! Race reports, access contexts, and suppressions.
//!
//! Real TSan attaches stack traces to accesses; we attach *access context*
//! labels interned at annotation time (e.g. `"kernel jacobi_step arg#0
//! [write]"` or `"MPI_Isend buffer [read]"`). Reports pair the current
//! access context with the recorded previous one — exactly the information
//! a user needs to locate both sides of the race.

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::collections::HashMap;
use std::fmt;

/// Interned id of an access-context label (bounded to 20 bits by the
/// shadow-slot packing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

impl CtxId {
    /// Context used when no label was supplied.
    pub const UNKNOWN: CtxId = CtxId(0);
}

/// Intern table for access-context labels.
#[derive(Debug)]
pub(crate) struct CtxTable {
    labels: Vec<String>,
    by_label: HashMap<String, CtxId>,
}

impl CtxTable {
    pub fn new() -> Self {
        let mut t = CtxTable {
            labels: Vec::new(),
            by_label: HashMap::new(),
        };
        let unknown = t.intern("<unknown>");
        debug_assert_eq!(unknown, CtxId::UNKNOWN);
        t
    }

    pub fn intern(&mut self, label: &str) -> CtxId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = CtxId(self.labels.len() as u32);
        assert!(id.0 < (1 << 20), "context table exhausted");
        self.labels.push(label.to_string());
        self.by_label.insert(label.to_string(), id);
        id
    }

    pub fn label(&self, id: CtxId) -> &str {
        self.labels
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("<invalid>")
    }

    pub fn heap_bytes(&self) -> u64 {
        self.labels.iter().map(|l| l.capacity() as u64 + 24).sum()
    }

    /// Serialize the label table in id order (ids are dense, so order is
    /// identity).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.labels.len());
        for l in &self.labels {
            w.put_str(l);
        }
    }

    /// Rebuild from [`Self::write_snapshot`] output.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        if n == 0 {
            return Err(SnapshotError::Corrupt("empty context table".into()));
        }
        let mut t = CtxTable {
            labels: Vec::with_capacity(n),
            by_label: HashMap::with_capacity(n),
        };
        for i in 0..n {
            let label = r.get_str()?;
            if t.by_label.contains_key(&label) {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate context label {label:?}"
                )));
            }
            t.by_label.insert(label.clone(), CtxId(i as u32));
            t.labels.push(label);
        }
        if t.labels[0] != "<unknown>" {
            return Err(SnapshotError::Corrupt(
                "context id 0 is not <unknown>".into(),
            ));
        }
        Ok(t)
    }
}

/// One side of a reported race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSide {
    /// Whether this side was a write.
    pub write: bool,
    /// Name of the fiber that performed the access (e.g. `"cuda stream 0"`,
    /// `"mpi req#3 (Isend)"`, `"host"`).
    pub fiber: String,
    /// Access-context label.
    pub ctx: String,
}

impl fmt::Display for RaceSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by {} at {}",
            if self.write { "write" } else { "read" },
            self.fiber,
            self.ctx
        )
    }
}

/// A detected data race (the analogue of a TSan report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Word-aligned address where the conflict was detected.
    pub addr: u64,
    /// The access that triggered detection.
    pub current: RaceSide,
    /// The previously recorded conflicting access.
    pub previous: RaceSide,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WARNING: data race at {:#x}", self.addr)?;
        writeln!(f, "  current:  {}", self.current)?;
        write!(f, "  previous: {}", self.previous)
    }
}

/// Suppression list: substring patterns matched against either side's
/// context or fiber label (paper artifact description: suppression lists
/// avoid false positives from uninstrumented libraries).
#[derive(Debug, Default, Clone)]
pub struct Suppressions {
    patterns: Vec<String>,
}

impl Suppressions {
    /// Add a substring pattern.
    pub fn add(&mut self, pattern: &str) {
        self.patterns.push(pattern.to_string());
    }

    /// Parse a TSan-style suppression file: one `race:<pattern>` entry per
    /// line, `#` comments and blank lines ignored. Suppression types other
    /// than `race:` (e.g. `thread:`, `mutex:`) are accepted but skipped,
    /// since only race reports exist here. Malformed lines are errors.
    pub fn parse(text: &str) -> Result<Suppressions, String> {
        let mut out = Suppressions::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((kind, pattern)) = line.split_once(':') else {
                return Err(format!(
                    "suppression line {}: expected `type:pattern`, got {line:?}",
                    lineno + 1
                ));
            };
            if pattern.is_empty() {
                return Err(format!("suppression line {}: empty pattern", lineno + 1));
            }
            if kind == "race" {
                out.add(pattern);
            }
        }
        Ok(out)
    }

    /// Merge another suppression set into this one.
    pub fn extend(&mut self, other: Suppressions) {
        self.patterns.extend(other.patterns);
    }

    /// True if the report matches any pattern.
    pub fn matches(&self, report: &RaceReport) -> bool {
        self.patterns.iter().any(|p| {
            report.current.ctx.contains(p.as_str())
                || report.previous.ctx.contains(p.as_str())
                || report.current.fiber.contains(p.as_str())
                || report.previous.fiber.contains(p.as_str())
        })
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if no patterns are installed.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The installed patterns.
    pub fn patterns(&self) -> impl Iterator<Item = &str> {
        self.patterns.iter().map(String::as_str)
    }

    /// Serialize the pattern list in install order (matching is
    /// any-pattern, but order still decides nothing — kept for byte
    /// stability of repeated snapshots).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.patterns.len());
        for p in &self.patterns {
            w.put_str(p);
        }
    }

    /// Rebuild from [`Self::write_snapshot`] output.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut patterns = Vec::with_capacity(n);
        for _ in 0..n {
            patterns.push(r.get_str()?);
        }
        Ok(Suppressions { patterns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut t = CtxTable::new();
        let a = t.intern("kernel foo arg#0");
        let b = t.intern("kernel foo arg#0");
        let c = t.intern("kernel foo arg#1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.label(a), "kernel foo arg#0");
    }

    #[test]
    fn unknown_ctx_is_zero() {
        let t = CtxTable::new();
        assert_eq!(t.label(CtxId::UNKNOWN), "<unknown>");
    }

    fn sample_report() -> RaceReport {
        RaceReport {
            addr: 0x4000,
            current: RaceSide {
                write: true,
                fiber: "cuda stream 1".into(),
                ctx: "kernel jacobi arg#0 [write]".into(),
            },
            previous: RaceSide {
                write: false,
                fiber: "mpi req#2 (Isend)".into(),
                ctx: "MPI_Isend buffer [read]".into(),
            },
        }
    }

    #[test]
    fn report_display_mentions_both_sides() {
        let r = sample_report().to_string();
        assert!(r.contains("data race"));
        assert!(r.contains("write by cuda stream 1"));
        assert!(r.contains("read by mpi req#2"));
    }

    #[test]
    fn parse_suppression_file() {
        let text =
            "# cluster-specific false positives\n\nrace:libucp\nrace:mca_btl\nthread:progress\n";
        let s = Suppressions::parse(text).unwrap();
        assert_eq!(s.len(), 2, "thread: entries are skipped");
        let mut r = sample_report();
        r.current.ctx = "write inside libucp progress".into();
        assert!(s.matches(&r));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Suppressions::parse("just-a-word").is_err());
        assert!(Suppressions::parse("race:").is_err());
        assert!(Suppressions::parse("").unwrap().is_empty());
    }

    #[test]
    fn suppressions_match_either_side() {
        let mut s = Suppressions::default();
        assert!(!s.matches(&sample_report()));
        s.add("MPI_Isend");
        assert!(s.matches(&sample_report()));
        let mut s2 = Suppressions::default();
        s2.add("stream 1");
        assert!(s2.matches(&sample_report()));
        let mut s3 = Suppressions::default();
        s3.add("no-such-thing");
        assert!(!s3.matches(&sample_report()));
    }
}
