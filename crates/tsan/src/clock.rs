//! Vector clocks for happens-before reasoning.
//!
//! Clock components are `u32` because epochs are packed into 64-bit shadow
//! slots (see [`crate::shadow`]); components count *release operations*, not
//! individual memory accesses, so 2^32 is far beyond any simulation.

use crate::fiber::FiberId;

/// A dense vector clock indexed by fiber id.
///
/// The representation is a plain `Vec<u32>` grown on demand: fiber ids are
/// small, densely allocated indices, making a dense clock both simpler and
/// faster than a sparse map for the fiber counts seen in practice (streams +
/// in-flight MPI requests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u32>,
}

impl VectorClock {
    /// The empty clock (all components zero).
    pub fn new() -> Self {
        VectorClock { c: Vec::new() }
    }

    /// Component for `f` (zero if never set).
    #[inline]
    pub fn get(&self, f: FiberId) -> u32 {
        self.c.get(f.index()).copied().unwrap_or(0)
    }

    /// Set component for `f`.
    #[inline]
    pub fn set(&mut self, f: FiberId, v: u32) {
        let i = f.index();
        if i >= self.c.len() {
            self.c.resize(i + 1, 0);
        }
        self.c[i] = v;
    }

    /// Increment component for `f`, returning the new value.
    #[inline]
    pub fn bump(&mut self, f: FiberId) -> u32 {
        let i = f.index();
        if i >= self.c.len() {
            self.c.resize(i + 1, 0);
        }
        self.c[i] += 1;
        self.c[i]
    }

    /// Overwrite `self` with `other`, reusing the existing allocation
    /// (unlike `clone_from`, which may reallocate when shrinking is
    /// followed by growth elsewhere; this keeps capacity monotonic).
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.c.clear();
        self.c.extend_from_slice(&other.c);
    }

    /// Elementwise maximum: `self = max(self, other)` (the acquire/join op).
    pub fn join(&mut self, other: &VectorClock) {
        let n = self.c.len().min(other.c.len());
        for (a, &b) in self.c.iter_mut().zip(&other.c[..n]) {
            if b > *a {
                *a = b;
            }
        }
        if other.c.len() > self.c.len() {
            self.c.extend_from_slice(&other.c[n..]);
        }
    }

    /// [`Self::join`] that also reports whether any component of `self`
    /// grew. A `false` return proves `self` already dominated `other`, so
    /// callers maintaining clock-generation counters can skip bumping
    /// them (the epoch-compression fast paths key on those counters).
    pub fn join_changed(&mut self, other: &VectorClock) -> bool {
        let n = self.c.len().min(other.c.len());
        let mut changed = false;
        for (a, &b) in self.c.iter_mut().zip(&other.c[..n]) {
            if b > *a {
                *a = b;
                changed = true;
            }
        }
        if other.c.len() > self.c.len() {
            // The tail only changes the observable clock if it carries a
            // nonzero component (absent components read as zero).
            changed |= other.c[n..].iter().any(|&b| b != 0);
            self.c.extend_from_slice(&other.c[n..]);
        }
        changed
    }

    /// True if every component of `self` is ≥ the corresponding component
    /// of `other` (i.e. `other` happens-before-or-equals this view).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        let n = self.c.len().min(other.c.len());
        self.c
            .iter()
            .zip(&other.c[..n])
            .all(|(&a, &b)| a >= b)
            // Components past self's length read as zero, so any nonzero
            // tail component of `other` breaks domination.
            && other.c[n..].iter().all(|&b| b == 0)
    }

    /// Number of allocated components (for memory accounting).
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// True if no component was ever set.
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Heap bytes used by this clock.
    pub fn heap_bytes(&self) -> u64 {
        (self.c.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Raw components for the snapshot codec (capacity is not
    /// observable, so components are the whole state).
    pub(crate) fn components(&self) -> &[u32] {
        &self.c
    }

    /// Rebuild from raw components (snapshot restore).
    pub(crate) fn from_components(c: Vec<u32>) -> Self {
        VectorClock { c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FiberId {
        FiberId::from_index(i as usize)
    }

    #[test]
    fn get_default_zero() {
        let c = VectorClock::new();
        assert_eq!(c.get(f(5)), 0);
    }

    #[test]
    fn set_and_get() {
        let mut c = VectorClock::new();
        c.set(f(3), 7);
        assert_eq!(c.get(f(3)), 7);
        assert_eq!(c.get(f(0)), 0);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn bump_increments() {
        let mut c = VectorClock::new();
        assert_eq!(c.bump(f(1)), 1);
        assert_eq!(c.bump(f(1)), 2);
        assert_eq!(c.get(f(1)), 2);
    }

    #[test]
    fn join_takes_elementwise_max() {
        let mut a = VectorClock::new();
        a.set(f(0), 5);
        a.set(f(1), 1);
        let mut b = VectorClock::new();
        b.set(f(1), 9);
        b.set(f(2), 2);
        a.join(&b);
        assert_eq!(a.get(f(0)), 5);
        assert_eq!(a.get(f(1)), 9);
        assert_eq!(a.get(f(2)), 2);
    }

    #[test]
    fn join_is_idempotent_and_commutative_on_result() {
        let mut a = VectorClock::new();
        a.set(f(0), 3);
        let mut b = VectorClock::new();
        b.set(f(1), 4);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.join(&b);
        assert_eq!(ab, abb);
    }

    #[test]
    fn dominates_reflexive_and_ordering() {
        let mut a = VectorClock::new();
        a.set(f(0), 2);
        a.set(f(1), 3);
        assert!(a.dominates(&a));
        let mut b = a.clone();
        b.bump(f(1));
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn join_changed_reports_growth_exactly() {
        let mut a = VectorClock::new();
        a.set(f(0), 3);
        a.set(f(2), 1);
        let mut b = VectorClock::new();
        b.set(f(0), 2);
        assert!(!a.join_changed(&b), "already dominated");
        let mut c = VectorClock::new();
        c.set(f(1), 5);
        assert!(a.join_changed(&c));
        assert_eq!(a.get(f(1)), 5);
        // A longer clock whose tail is all zero adds nothing observable.
        let mut zeros = VectorClock::new();
        zeros.set(f(7), 1);
        zeros.set(f(7), 0); // len 8, every component 0
        assert!(!a.join_changed(&zeros));
        // ...but a nonzero tail component does.
        let mut tail = VectorClock::new();
        tail.set(f(9), 2);
        assert!(a.join_changed(&tail));
        assert_eq!(a.get(f(9)), 2);
    }

    #[test]
    fn join_changed_matches_join_result() {
        let mut a = VectorClock::new();
        a.set(f(0), 4);
        a.set(f(3), 2);
        let mut b = VectorClock::new();
        b.set(f(1), 7);
        b.set(f(3), 1);
        let mut via_join = a.clone();
        via_join.join(&b);
        a.join_changed(&b);
        assert_eq!(a, via_join);
    }

    #[test]
    fn dominates_ignores_zero_tail() {
        let mut short = VectorClock::new();
        short.set(f(0), 1);
        let mut long = VectorClock::new();
        long.set(f(0), 1);
        long.set(f(5), 0); // trailing zeros only
        assert!(short.dominates(&long));
        assert!(long.dominates(&short));
    }

    #[test]
    fn dominates_with_shorter_self() {
        let a = VectorClock::new();
        let mut b = VectorClock::new();
        b.set(f(4), 1);
        assert!(!a.dominates(&b));
        assert!(b.dominates(&a));
    }
}
