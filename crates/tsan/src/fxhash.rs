//! Minimal FxHash-style hasher for integer-keyed maps.
//!
//! The shadow-page map and sync-variable map are keyed by addresses and are
//! on the hot path of every range annotation; SipHash would dominate the
//! cost. This is the well-known Firefox/rustc multiply-rotate hash,
//! implemented in-repo to stay within the approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant used by rustc's FxHash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        let mut set = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i * 4096);
            set.insert(h.finish());
        }
        // Page-stride keys must not collapse.
        assert!(set.len() > 9_990);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&40), Some(&80));
        assert_eq!(m.len(), 100);
    }
}
