//! Differential test for the runtime snapshot codec: interrupting a
//! workload at any point with a snapshot→restore round trip must be
//! invisible — the restored runtime finishes the workload with
//! bit-for-bit identical reports, stats, and shadow evolution to an
//! uninterrupted run, in every representation mode (tiered/flat shadow,
//! arena on/off, epoch clocks on/off, budgeted or not).

use tsan_rt::{FiberId, SyncKey, TsanRuntime};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scripted runtime operation with concrete ids, so the same script
/// replays identically against any fresh runtime.
#[derive(Debug, Clone)]
enum Op {
    Create {
        expect: FiberId,
        name: String,
    },
    Destroy(FiberId),
    Switch {
        fiber: FiberId,
        sync: bool,
    },
    Hb(u64),
    Ha(u64),
    Access {
        addr: u64,
        len: u64,
        label: String,
        write: bool,
    },
    Discard(u64),
}

fn apply(rt: &mut TsanRuntime, op: &Op) {
    match op {
        Op::Create { expect, name } => {
            let got = rt.create_fiber(name);
            assert_eq!(got, *expect, "fiber numbering diverged");
        }
        Op::Destroy(f) => rt.destroy_fiber(*f),
        Op::Switch { fiber, sync: true } => rt.switch_to_fiber_sync(*fiber),
        Op::Switch { fiber, sync: false } => rt.switch_to_fiber(*fiber),
        Op::Hb(k) => rt.annotate_happens_before(SyncKey(*k)),
        Op::Ha(k) => {
            rt.annotate_happens_after(SyncKey(*k));
        }
        Op::Access {
            addr,
            len,
            label,
            write,
        } => {
            let ctx = rt.intern_ctx(label);
            if *write {
                rt.write_range(*addr, *len, ctx);
            } else {
                rt.read_range(*addr, *len, ctx);
            }
        }
        Op::Discard(addr) => {
            rt.discard_shadow_page(*addr);
        }
    }
}

/// Generate a deterministic op script by driving a scratch runtime (so
/// fiber ids in the script are the ones any replay will assign). The
/// script mixes every state-machine shape: slot reuse, sync and
/// non-sync switches, release/acquire chains, page-covering and ragged
/// accesses, eviction pressure (6 fibers on a few addresses), and page
/// discards that seed the arena free list.
fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut s = seed;
    let mut scratch = TsanRuntime::new("host");
    let mut live: Vec<FiberId> = vec![FiberId::HOST];
    let mut current = FiberId::HOST;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let r = splitmix(&mut s);
        match r % 12 {
            0 if live.len() < 6 => {
                let name = format!("fiber#{i}");
                let expect = scratch.peek_next_fiber();
                scratch.create_fiber(&name);
                live.push(expect);
                ops.push(Op::Create { expect, name });
            }
            1 if live.len() > 2 => {
                let candidates: Vec<FiberId> = live
                    .iter()
                    .copied()
                    .filter(|&f| f != FiberId::HOST && f != current)
                    .collect();
                if !candidates.is_empty() {
                    let f = candidates[(r >> 8) as usize % candidates.len()];
                    scratch.destroy_fiber(f);
                    live.retain(|&g| g != f);
                    ops.push(Op::Destroy(f));
                }
            }
            2 | 3 => {
                let f = live[(r >> 8) as usize % live.len()];
                let sync = (r >> 32) & 1 == 1;
                if sync {
                    scratch.switch_to_fiber_sync(f);
                } else {
                    scratch.switch_to_fiber(f);
                }
                current = f;
                ops.push(Op::Switch { fiber: f, sync });
            }
            4 => {
                let k = (r >> 8) % 8;
                scratch.annotate_happens_before(SyncKey(k));
                ops.push(Op::Hb(k));
            }
            5 => {
                let k = (r >> 8) % 8;
                scratch.annotate_happens_after(SyncKey(k));
                ops.push(Op::Ha(k));
            }
            11 => {
                let addr = 0x1000 * ((r >> 8) % 8);
                scratch.discard_shadow_page(addr);
                ops.push(Op::Discard(addr));
            }
            _ => {
                let addr = 0x1000 * ((r >> 8) % 8) + 8 * ((r >> 40) % 4);
                let len = [8u64, 64, 100, 4096, 8192][(r >> 16) as usize % 5];
                let label = format!("ctx{}", (r >> 24) % 5);
                let write = (r >> 33) & 1 == 1;
                let ctx = scratch.intern_ctx(&label);
                if write {
                    scratch.write_range(addr, len, ctx);
                } else {
                    scratch.read_range(addr, len, ctx);
                }
                ops.push(Op::Access {
                    addr,
                    len,
                    label,
                    write,
                });
            }
        }
    }
    ops
}

fn fresh(tiered: bool, arena: bool, epoch: bool, budget: Option<usize>) -> TsanRuntime {
    let mut rt = TsanRuntime::with_options("host", tiered, arena, epoch);
    rt.set_shadow_page_budget(budget);
    rt.add_suppression("suppressed-lib");
    rt
}

fn assert_observably_equal(a: &TsanRuntime, b: &TsanRuntime) {
    assert_eq!(a.race_count(), b.race_count());
    assert_eq!(a.reports(), b.reports());
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.shadow_pages(), b.shadow_pages());
    assert_eq!(a.live_fibers(), b.live_fibers());
    assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
}

#[test]
fn snapshot_restore_is_invisible_at_any_split() {
    for (tiered, arena, epoch) in [
        (true, true, true),
        (true, false, true),
        (false, true, false),
        (true, true, false),
    ] {
        for seed in [1u64, 42, 0xC0FFEE] {
            let ops = gen_ops(seed, 300);
            let budget = if seed == 42 { Some(3) } else { None };
            let mut reference = fresh(tiered, arena, epoch, budget);
            for op in &ops {
                apply(&mut reference, op);
            }
            for split in [0, 1, 37, 150, 299, 300] {
                let mut head = fresh(tiered, arena, epoch, budget);
                for op in &ops[..split] {
                    apply(&mut head, op);
                }
                let blob = head.snapshot_bytes();
                let mut tail = TsanRuntime::restore_bytes(&blob)
                    .unwrap_or_else(|e| panic!("restore at split {split}: {e}"));
                // Snapshots are canonical: re-snapshotting the restored
                // runtime reproduces the blob byte-for-byte.
                assert_eq!(tail.snapshot_bytes(), blob, "split {split} not canonical");
                assert_observably_equal(&head, &tail);
                for op in &ops[split..] {
                    apply(&mut tail, op);
                }
                assert_observably_equal(&reference, &tail);
            }
        }
    }
}

#[test]
fn restored_runtime_continues_arena_recycling_identically() {
    // Discard → refill cycles after restore must recycle the same
    // blocks in the same order as the uninterrupted run (arena counters
    // are part of the summary surface).
    let script = |rt: &mut TsanRuntime, phase2: bool| {
        let ctx = rt.intern_ctx("w");
        for i in 0..6u64 {
            rt.write_range(i * 0x1000, 64, ctx); // partial: unfolded pages
        }
        for i in 0..3u64 {
            rt.discard_shadow_page(i * 0x1000);
        }
        if phase2 {
            for i in 0..6u64 {
                rt.write_range((8 + i) * 0x1000 + 8, 72, ctx);
            }
        }
    };
    let mut reference = TsanRuntime::new("host");
    script(&mut reference, false);
    script(&mut reference, true);
    let mut head = TsanRuntime::new("host");
    script(&mut head, false);
    let mut restored = TsanRuntime::restore_bytes(&head.snapshot_bytes()).unwrap();
    script(&mut restored, true);
    let (a, b) = (reference.stats(), restored.stats());
    assert!(b.arena_pages_reused >= 3, "recycle path exercised");
    assert_eq!(a.arena_pages_reused, b.arena_pages_reused);
    assert_eq!(a.arena_slabs_allocated, b.arena_slabs_allocated);
    assert_eq!(a.arena_pages_evicted, b.arena_pages_evicted);
    assert_observably_equal(&reference, &restored);
}

#[test]
fn restore_rejects_garbage() {
    use tsan_rt::SnapshotError;
    assert_eq!(
        TsanRuntime::restore_bytes(b"not a snapshot at all").err(),
        Some(SnapshotError::BadMagic)
    );
    assert_eq!(
        TsanRuntime::restore_bytes(b"cus").err(),
        Some(SnapshotError::Truncated)
    );
    let mut blob = TsanRuntime::new("host").snapshot_bytes();
    blob[8] = 0xFF; // version field
    assert!(matches!(
        TsanRuntime::restore_bytes(&blob),
        Err(SnapshotError::UnsupportedVersion(_))
    ));
    let blob = TsanRuntime::new("host").snapshot_bytes();
    assert!(TsanRuntime::restore_bytes(&blob[..blob.len() - 1]).is_err());
    // Trailing garbage is an error, not silently ignored.
    let mut blob = TsanRuntime::new("host").snapshot_bytes();
    blob.push(0);
    assert!(matches!(
        TsanRuntime::restore_bytes(&blob),
        Err(SnapshotError::Corrupt(_))
    ));
}

#[test]
fn restore_preserves_suppressions_and_report_cap() {
    let mut rt = TsanRuntime::new("host");
    rt.add_suppression("openmpi-internal");
    let f = rt.create_fiber("f");
    let cw = rt.intern_ctx("openmpi-internal progress");
    let cr = rt.intern_ctx("host read");
    rt.switch_to_fiber(f);
    rt.write_range(0x4000, 8, cw);
    let mut back = TsanRuntime::restore_bytes(&rt.snapshot_bytes()).unwrap();
    back.switch_to_fiber(FiberId::HOST);
    back.read_range(0x4000, 8, cr);
    assert_eq!(back.race_count(), 0, "suppression survived the round trip");
    assert_eq!(back.stats().races_suppressed, 1);
}
