//! Differential safety net for the epoch-compressed clock fast paths.
//!
//! Drives identical randomized schedules — fiber create/destroy/switches
//! (sync and non-sync), release/acquire edges over a small key set, and
//! read/write ranges — through two [`TsanRuntime`]s that differ only in
//! the `epoch_clocks` flag:
//!
//! * **compressed**: the scalar-epoch fast paths may skip provably
//!   redundant vector-clock joins (the code under test);
//! * **reference**: every release/acquire/sync-switch performs the full
//!   O(fibers) join.
//!
//! The fast paths claim to be *pure* skip optimizations, so everything
//! observable must be identical: race reports (addresses, both sides,
//! labels), every pairwise `dominates` outcome between live fiber
//! clocks, and every individual clock component. Clocks are compared
//! component-wise, never via `PartialEq` — the two modes may leave
//! different trailing-zero `Vec` lengths (`copy_from` vs `join` vs skip),
//! which is exactly the representation difference that must stay
//! unobservable.

use proptest::prelude::*;
use tsan_rt::{FiberId, SyncKey, TsanRuntime};

#[derive(Debug, Clone)]
enum Op {
    SwitchNoSync(usize),
    SwitchSync(usize),
    /// Sync-switch to a fiber and immediately back — the stream-fiber
    /// pattern that exercises the `last_sync` stamp skip hardest.
    SyncRoundTrip(usize),
    Release(u64),
    Acquire(u64),
    /// Release then immediately re-release the same key (fast-release
    /// candidate in compressed mode).
    DoubleRelease(u64),
    Access(u64, u64, bool),
}

fn op_strategy(n_fibers: usize) -> impl Strategy<Value = Op> {
    let addr = prop_oneof![
        Just(0x4_0000u64),
        Just(0x4_0008u64),
        Just(0x4_0ff0u64),
        Just(0x5_0000u64),
    ];
    prop_oneof![
        (0..n_fibers).prop_map(Op::SwitchNoSync),
        (0..n_fibers).prop_map(Op::SwitchSync),
        (0..n_fibers).prop_map(Op::SyncRoundTrip),
        (0..4u64).prop_map(Op::Release),
        (0..4u64).prop_map(Op::Acquire),
        (0..4u64).prop_map(Op::DoubleRelease),
        (addr, 1u64..128, any::<bool>()).prop_map(|(a, l, w)| Op::Access(a, l, w)),
    ]
}

fn apply(rt: &mut TsanRuntime, fibers: &[FiberId], op: &Op) {
    match *op {
        Op::SwitchNoSync(f) => rt.switch_to_fiber(fibers[f]),
        Op::SwitchSync(f) => rt.switch_to_fiber_sync(fibers[f]),
        Op::SyncRoundTrip(f) => {
            let back = rt.current_fiber();
            rt.switch_to_fiber_sync(fibers[f]);
            rt.switch_to_fiber(back);
        }
        Op::Release(k) => rt.annotate_happens_before(SyncKey(k)),
        Op::Acquire(k) => {
            rt.annotate_happens_after(SyncKey(k));
        }
        Op::DoubleRelease(k) => {
            rt.annotate_happens_before(SyncKey(k));
            rt.annotate_happens_before(SyncKey(k));
        }
        Op::Access(addr, len, write) => {
            let ctx = rt.intern_ctx("differential access");
            if write {
                rt.write_range(addr, len, ctx);
            } else {
                rt.read_range(addr, len, ctx);
            }
        }
    }
}

/// Component-wise clock equality plus identical pairwise `dominates`
/// verdicts across every fiber pair (host included).
fn assert_clocks_agree(compressed: &TsanRuntime, reference: &TsanRuntime, fibers: &[FiberId]) {
    let mut all = vec![compressed.host_fiber()];
    all.extend_from_slice(fibers);
    for &f in &all {
        let a = compressed.fiber_clock(f);
        let b = reference.fiber_clock(f);
        let n = a.len().max(b.len());
        for i in 0..n {
            let g = FiberId::from_index(i);
            assert_eq!(
                a.get(g),
                b.get(g),
                "clock of {f:?} diverged at component {i}"
            );
        }
    }
    for &x in &all {
        for &y in &all {
            assert_eq!(
                compressed
                    .fiber_clock(x)
                    .dominates(compressed.fiber_clock(y)),
                reference.fiber_clock(x).dominates(reference.fiber_clock(y)),
                "dominates({x:?}, {y:?}) diverged"
            );
        }
    }
}

/// The differential tests above are only meaningful if the fast paths
/// actually fire; pin the canonical stream-op loop to all three.
#[test]
fn fast_paths_fire_on_stream_op_loop() {
    let mut rt = TsanRuntime::with_options("host", true, true, true);
    let stream = rt.create_fiber("stream");
    let host = rt.host_fiber();
    let key = SyncKey(0x51);
    // 4 host sync points, each preceded by a burst of 8 device ops. The
    // host clock is untouched within a burst, so from the second launch
    // on, the sync switch hits the `last_sync` stamp skip and the release
    // hits the unchanged-clock collapse; only the burst's first switch
    // and the host's acquire pay a full join.
    for _ in 0..4 {
        for _ in 0..8 {
            rt.switch_to_fiber_sync(stream); // kernel launch enters the stream
            rt.annotate_happens_before(key); // completion release
            rt.switch_to_fiber(host); // non-sync return
        }
        rt.annotate_happens_after(key); // host sync acquires once per burst
    }
    let s = rt.stats();
    assert!(
        s.epoch_fast_acquires >= 4 * 7,
        "sync-switch stamp skips missing: {s:?}"
    );
    assert!(
        s.epoch_fast_releases >= 4 * 7,
        "unchanged-clock release collapse missing: {s:?}"
    );
    assert!(
        s.epoch_fast_acquires > s.full_clock_joins,
        "the steady-state loop should be dominated by fast paths: {s:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Epoch compression is invisible: identical schedules produce
    /// identical reports and identical happens-before relations.
    #[test]
    fn epoch_compression_is_observably_identical(
        ops in proptest::collection::vec(op_strategy(5), 1..120)
    ) {
        let mut compressed = TsanRuntime::with_options("host", true, true, true);
        let mut reference = TsanRuntime::with_options("host", true, true, false);
        prop_assert!(compressed.epoch_clocks_enabled());
        prop_assert!(!reference.epoch_clocks_enabled());
        let fibers: Vec<FiberId> = (0..5)
            .map(|i| {
                let a = compressed.create_fiber(&format!("fiber {i}"));
                let b = reference.create_fiber(&format!("fiber {i}"));
                assert_eq!(a, b);
                a
            })
            .collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut compressed, &fibers, op);
            apply(&mut reference, &fibers, op);
            // Clock agreement is cheap enough to check at every step —
            // a divergence is caught at the op that introduced it.
            if i % 7 == 0 {
                assert_clocks_agree(&compressed, &reference, &fibers);
            }
        }
        assert_clocks_agree(&compressed, &reference, &fibers);
        prop_assert_eq!(compressed.take_reports(), reference.take_reports());
        // The compressed run must do no *more* slow joins than the
        // reference (skips only remove work)...
        let (cs, rs) = (compressed.stats(), reference.stats());
        prop_assert!(cs.full_clock_joins <= rs.full_clock_joins);
        // ...and the reference never takes a fast path.
        prop_assert_eq!(rs.epoch_fast_acquires, 0);
        prop_assert_eq!(rs.epoch_fast_releases, 0);
    }

    /// Fiber slot reuse must invalidate every fast-path stamp: a fresh
    /// fiber in a recycled slot shares nothing with its predecessor.
    #[test]
    fn slot_reuse_never_resurrects_stamps(
        rounds in 1usize..12,
        keys in proptest::collection::vec(0u64..3, 1..6)
    ) {
        let mut compressed = TsanRuntime::with_options("host", true, true, true);
        let mut reference = TsanRuntime::with_options("host", true, true, false);
        for _ in 0..rounds {
            let a = compressed.create_fiber("worker");
            let b = reference.create_fiber("worker");
            prop_assert_eq!(a, b);
            for &k in &keys {
                compressed.switch_to_fiber_sync(a);
                reference.switch_to_fiber_sync(b);
                compressed.annotate_happens_before(SyncKey(k));
                reference.annotate_happens_before(SyncKey(k));
                compressed.annotate_happens_after(SyncKey(k));
                reference.annotate_happens_after(SyncKey(k));
                let host = compressed.host_fiber();
                compressed.switch_to_fiber(host);
                reference.switch_to_fiber(host);
            }
            // Destroy and let the next round reuse the slot.
            compressed.destroy_fiber(a);
            reference.destroy_fiber(b);
            assert_clocks_agree(&compressed, &reference, &[]);
        }
        prop_assert_eq!(compressed.take_reports(), reference.take_reports());
    }
}
