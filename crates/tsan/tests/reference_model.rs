//! Differential property test: the production detector (4 shadow slots,
//! round-robin eviction, context-pair dedup) against an **exact reference
//! checker** that keeps the complete access history with full vector-clock
//! snapshots.
//!
//! Invariants:
//!
//! * **No false positives, ever**: if the engine reports a race, the
//!   reference must contain a genuinely concurrent conflicting pair.
//! * **No false negatives under low slot pressure**: when every word sees
//!   at most 3 accesses (no eviction possible), the engine finds a race
//!   iff the reference does.

use proptest::prelude::*;
use std::collections::HashMap;
use tsan_rt::{FiberId, SyncKey, TsanRuntime};

const N_FIBERS: usize = 4;

/// Schedule operations. Accesses are word-sized so the reference model is
/// exact per shadow word.
#[derive(Debug, Clone)]
enum Op {
    /// Switch without synchronization.
    Switch(usize),
    /// Synchronizing switch (submission order).
    SwitchSync(usize),
    /// Release on one of 3 keys.
    Release(u8),
    /// Acquire on one of 3 keys.
    Acquire(u8),
    /// 8-byte access to one of `n_words` words.
    Access { word: u8, write: bool },
}

fn op_strategy(n_words: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_FIBERS).prop_map(Op::Switch),
        (0..N_FIBERS).prop_map(Op::SwitchSync),
        (0u8..3).prop_map(Op::Release),
        (0u8..3).prop_map(Op::Acquire),
        (0..n_words, any::<bool>()).prop_map(|(word, write)| Op::Access { word, write }),
    ]
}

/// One recorded access: (fiber, own component at access, snapshot, write).
type RefAccess = (usize, u64, Vec<u64>, bool);

/// Exact reference checker: full history + full clock snapshots.
#[derive(Default)]
struct Reference {
    clocks: Vec<Vec<u64>>,       // per fiber
    sync: HashMap<u8, Vec<u64>>, // per key
    current: usize,
    history: HashMap<u8, Vec<RefAccess>>,
}

fn join(a: &mut Vec<u64>, b: &[u64]) {
    if b.len() > a.len() {
        a.resize(b.len(), 0);
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x = (*x).max(y);
    }
}

impl Reference {
    fn new() -> Self {
        // Fiber 0 = host with initial own component 1; others created by
        // the host up front (inheriting its clock, bumping the creator) —
        // mirroring the engine's `create_fiber` semantics.
        let mut r = Reference {
            clocks: vec![vec![0; N_FIBERS + 1]; N_FIBERS + 1],
            ..Reference::default()
        };
        r.clocks[0][0] = 1;
        for f in 1..=N_FIBERS {
            let creator = r.clocks[0].clone();
            r.clocks[0][0] += 1; // creation bumps the creator
            r.clocks[f] = creator;
            r.clocks[f][f] = 1;
        }
        r.current = 0;
        r
    }

    fn switch(&mut self, f: usize, sync: bool) {
        if sync && f != self.current {
            let from = self.clocks[self.current].clone();
            join(&mut self.clocks[f], &from);
        }
        self.current = f;
    }

    fn release(&mut self, key: u8) {
        let c = self.clocks[self.current].clone();
        join(self.sync.entry(key).or_default(), &c);
        let cur = self.current;
        self.clocks[cur][cur] += 1;
    }

    fn acquire(&mut self, key: u8) {
        if let Some(sv) = self.sync.get(&key) {
            let sv = sv.clone();
            join(&mut self.clocks[self.current], &sv);
        }
    }

    fn access(&mut self, word: u8, write: bool) {
        let f = self.current;
        let own = self.clocks[f][f];
        let snap = self.clocks[f].clone();
        self.history
            .entry(word)
            .or_default()
            .push((f, own, snap, write));
    }

    /// True if any conflicting pair in the history is concurrent.
    fn has_race(&self) -> bool {
        for accesses in self.history.values() {
            for (i, (fa, ca, _, wa)) in accesses.iter().enumerate() {
                for (fb, _, snap_b, wb) in accesses.iter().skip(i + 1) {
                    if fa == fb || !(*wa || *wb) {
                        continue;
                    }
                    // B is later in program order; A happens-before B iff
                    // B's snapshot covers A's epoch.
                    let covered = snap_b.get(*fa).copied().unwrap_or(0) >= *ca;
                    if !covered {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Max number of accesses any single word received.
    fn max_word_pressure(&self) -> usize {
        self.history.values().map(Vec::len).max().unwrap_or(0)
    }
}

fn run_engine(ops: &[Op]) -> u64 {
    let mut rt = TsanRuntime::new("host");
    let fibers: Vec<FiberId> = (0..N_FIBERS)
        .map(|i| rt.create_fiber(&format!("f{i}")))
        .collect();
    let to_fiber = |i: usize| if i == 0 { FiberId::HOST } else { fibers[i - 1] };
    let ctx = rt.intern_ctx("access");
    // NOTE: op fiber indices are 0..N_FIBERS where 0 = host; the reference
    // uses the same numbering.
    for op in ops {
        match op {
            Op::Switch(f) => rt.switch_to_fiber(to_fiber(*f)),
            Op::SwitchSync(f) => rt.switch_to_fiber_sync(to_fiber(*f)),
            Op::Release(k) => rt.annotate_happens_before(SyncKey(u64::from(*k))),
            Op::Acquire(k) => {
                rt.annotate_happens_after(SyncKey(u64::from(*k)));
            }
            Op::Access { word, write } => {
                let addr = 0x9_0000 + u64::from(*word) * 8;
                if *write {
                    rt.write_range(addr, 8, ctx);
                } else {
                    rt.read_range(addr, 8, ctx);
                }
            }
        }
    }
    rt.race_count()
}

fn run_reference(ops: &[Op]) -> (bool, usize) {
    let mut r = Reference::new();
    for op in ops {
        match op {
            Op::Switch(f) => r.switch(*f, false),
            Op::SwitchSync(f) => r.switch(*f, true),
            Op::Release(k) => r.release(*k),
            Op::Acquire(k) => r.acquire(*k),
            Op::Access { word, write } => r.access(*word, *write),
        }
    }
    (r.has_race(), r.max_word_pressure())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: every engine-reported race corresponds to a genuinely
    /// concurrent conflicting pair in the exact history.
    #[test]
    fn engine_never_reports_false_positives(
        ops in proptest::collection::vec(op_strategy(8), 1..60)
    ) {
        let engine_races = run_engine(&ops);
        let (ref_race, _) = run_reference(&ops);
        prop_assert!(
            engine_races == 0 || ref_race,
            "engine reported {engine_races} race(s) but the exact history has none"
        );
    }

    /// Completeness under low slot pressure: with few enough accesses per
    /// word (no eviction), the engine agrees exactly with the reference.
    #[test]
    fn engine_is_exact_without_eviction(
        ops in proptest::collection::vec(op_strategy(16), 1..24)
    ) {
        let (ref_race, pressure) = run_reference(&ops);
        prop_assume!(pressure <= 3);
        let engine_races = run_engine(&ops);
        prop_assert_eq!(
            engine_races > 0,
            ref_race,
            "engine={} reference={} (pressure {})",
            engine_races,
            ref_race,
            pressure
        );
    }
}
