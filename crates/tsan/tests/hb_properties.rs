//! Property tests for the happens-before engine.
//!
//! The key soundness/completeness invariants:
//!
//! * **No false positives on well-synchronized programs**: accesses
//!   serialized by a release/acquire token chain never race, regardless
//!   of interleaving, fiber count, or access mix.
//! * **No false negatives on trivially racy programs**: two unordered
//!   conflicting accesses from different fibers are always reported
//!   (within shadow-slot capacity).
//! * **Determinism**: identical schedules produce identical results.

use proptest::prelude::*;
use tsan_rt::{FiberId, SyncKey, TsanRuntime};

/// A step of a token-passing schedule: the fiber acquires the token,
/// performs its accesses, then releases the token for the next holder.
#[derive(Debug, Clone)]
struct TokenStep {
    fiber: usize,
    accesses: Vec<(u64, u64, bool)>, // (addr, len, write)
}

fn addr_strategy() -> impl Strategy<Value = u64> {
    // A handful of overlapping cache-page-spanning locations.
    prop_oneof![
        Just(0x1_0000u64),
        Just(0x1_0008u64),
        Just(0x1_0ff8u64), // page-boundary straddle
        Just(0x2_0000u64),
    ]
}

fn step_strategy(n_fibers: usize) -> impl Strategy<Value = TokenStep> {
    (
        0..n_fibers,
        proptest::collection::vec((addr_strategy(), 1u64..64, any::<bool>()), 1..4),
    )
        .prop_map(|(fiber, accesses)| TokenStep { fiber, accesses })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Token-passing serialization: no interleaving of fibers and access
    /// patterns may ever produce a race report.
    #[test]
    fn token_passing_schedules_never_race(
        steps in proptest::collection::vec(step_strategy(6), 1..40)
    ) {
        let mut rt = TsanRuntime::new("host");
        let fibers: Vec<FiberId> =
            (0..6).map(|i| rt.create_fiber(&format!("fiber {i}"))).collect();
        let token = SyncKey(0xA0);
        let ctx = rt.intern_ctx("tokenized access");
        // Host holds the token initially.
        rt.annotate_happens_before(token);
        for step in &steps {
            rt.switch_to_fiber(fibers[step.fiber]);
            assert!(rt.annotate_happens_after(token), "token chain intact");
            for &(addr, len, write) in &step.accesses {
                if write {
                    rt.write_range(addr, len, ctx);
                } else {
                    rt.read_range(addr, len, ctx);
                }
            }
            rt.annotate_happens_before(token);
        }
        prop_assert_eq!(rt.race_count(), 0);
    }

    /// Two conflicting accesses from different, unsynchronized fibers are
    /// always detected, whatever lengths/overlap the accesses have.
    #[test]
    fn unsynchronized_conflicts_always_detected(
        off_a in 0u64..32,
        len_a in 1u64..64,
        off_b in 0u64..32,
        len_b in 1u64..64,
        a_writes in any::<bool>(),
    ) {
        // Force overlap of at least one shadow word.
        let base = 0x5_0000u64;
        let (a0, a1) = (base + off_a, base + off_a + len_a);
        let (b0, b1) = (base + off_b, base + off_b + len_b);
        let overlap_words = (a0 / 8 <= (b1 - 1) / 8) && (b0 / 8 <= (a1 - 1) / 8);
        prop_assume!(overlap_words);

        let mut rt = TsanRuntime::new("host");
        let f = rt.create_fiber("other");
        let ctx = rt.intern_ctx("x");
        rt.switch_to_fiber(f);
        if a_writes {
            rt.write_range(a0, len_a, ctx);
        } else {
            rt.read_range(a0, len_a, ctx);
        }
        rt.switch_to_fiber(FiberId::HOST);
        // The second access conflicts iff at least one side writes.
        rt.write_range(b0, len_b, ctx);
        prop_assert!(rt.race_count() >= 1);
    }

    /// Read-read sharing never races regardless of interleaving.
    #[test]
    fn concurrent_reads_never_race(
        reads in proptest::collection::vec((0..4usize, addr_strategy(), 1u64..128), 1..40)
    ) {
        let mut rt = TsanRuntime::new("host");
        let fibers: Vec<FiberId> =
            (0..4).map(|i| rt.create_fiber(&format!("r{i}"))).collect();
        let ctx = rt.intern_ctx("shared read");
        for (f, addr, len) in reads {
            rt.switch_to_fiber(fibers[f]);
            rt.read_range(addr, len, ctx);
        }
        prop_assert_eq!(rt.race_count(), 0);
    }

    /// Determinism: replaying the same schedule yields identical stats.
    #[test]
    fn schedules_are_deterministic(
        steps in proptest::collection::vec(
            (0..4usize, addr_strategy(), 1u64..64, any::<bool>(), any::<bool>()),
            1..30
        )
    ) {
        let run = || {
            let mut rt = TsanRuntime::new("host");
            let fibers: Vec<FiberId> =
                (0..4).map(|i| rt.create_fiber(&format!("f{i}"))).collect();
            let ctx = rt.intern_ctx("x");
            for &(f, addr, len, write, sync) in &steps {
                if sync {
                    rt.annotate_happens_before(SyncKey(7));
                    rt.switch_to_fiber(fibers[f]);
                    rt.annotate_happens_after(SyncKey(7));
                } else {
                    rt.switch_to_fiber(fibers[f]);
                }
                if write {
                    rt.write_range(addr, len, ctx);
                } else {
                    rt.read_range(addr, len, ctx);
                }
                rt.switch_to_fiber(FiberId::HOST);
            }
            (rt.race_count(), rt.stats().races_deduped, rt.shadow_pages())
        };
        prop_assert_eq!(run(), run());
    }

    /// Same-fiber programs never race, whatever they do.
    #[test]
    fn single_fiber_never_races(
        ops in proptest::collection::vec((addr_strategy(), 1u64..256, any::<bool>()), 1..60)
    ) {
        let mut rt = TsanRuntime::new("host");
        let ctx = rt.intern_ctx("x");
        for (addr, len, write) in ops {
            if write {
                rt.write_range(addr, len, ctx);
            } else {
                rt.read_range(addr, len, ctx);
            }
        }
        prop_assert_eq!(rt.race_count(), 0);
    }
}
