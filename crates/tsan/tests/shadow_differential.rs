//! Differential safety net for the tiered shadow.
//!
//! Replays randomized access/sync traces against two implementations:
//!
//! * the **tiered** [`ShadowMemory`] (page summaries + same-state fast
//!   path) — the code under test;
//! * a **naive reference shadow** written here from scratch: a plain
//!   `HashMap<word, [u64; 4]>` that walks every word of every access with
//!   the same slot state machine and the same word-local eviction victim.
//!
//! Because eviction is deterministic and word-local in both, the two must
//! produce *exactly* equal conflict multisets (as word-addr/packed-prev
//! pairs) and equal final per-word slot contents — not merely equal
//! modulo eviction order. Any divergence (a lost detection, a spurious
//! conflict, a fast-path skip that mattered) fails the test.
//!
//! The trace generator is a seeded LCG, so failures reproduce. The op mix
//! is shaped like real CuSan workloads: mostly whole-buffer (page-covering)
//! annotations, frequent identical re-annotations (the fast-path pattern),
//! some partial/unaligned accesses (unfold pressure), 6 fibers (slot
//! eviction pressure), and release/acquire edges over a few sync keys.

use std::collections::{BTreeMap, HashMap};

use tsan_rt::clock::VectorClock;
use tsan_rt::fiber::FiberId;
use tsan_rt::report::CtxId;
use tsan_rt::shadow::{
    pack, unpack, RawConflict, ShadowAccess, ShadowMemory, PAGE_BYTES, SLOTS_PER_WORD, WORD_BYTES,
};

// ---- naive reference shadow ------------------------------------------------

/// Flat per-word shadow with no tiers. Semantics duplicated independently
/// of `shadow.rs` internals (same published rules: subsumption, HB check,
/// word-local eviction victim `(word ^ fiber) % 4`).
#[derive(Default)]
struct ReferenceShadow {
    words: HashMap<u64, [u64; SLOTS_PER_WORD]>,
}

impl ReferenceShadow {
    #[allow(clippy::too_many_arguments)]
    fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        fiber: FiberId,
        clock: u32,
        ctx: CtxId,
        fiber_clock: &VectorClock,
        mut on_conflict: impl FnMut(RawConflict),
    ) {
        if len == 0 {
            return;
        }
        let new_raw = pack(ShadowAccess {
            fiber,
            clock,
            ctx,
            write,
        });
        let first = addr / WORD_BYTES;
        let last = (addr + len - 1) / WORD_BYTES;
        for w in first..=last {
            let slots = self.words.entry(w).or_default();
            let mut store_at = None;
            let mut skip = false;
            let mut empty_at = None;
            for (i, &raw) in slots.iter().enumerate() {
                if raw == 0 {
                    if empty_at.is_none() {
                        empty_at = Some(i);
                    }
                    continue;
                }
                let prev = unpack(raw);
                if prev.fiber == fiber {
                    if write || !prev.write {
                        store_at = Some(i);
                    } else {
                        skip = true;
                    }
                    continue;
                }
                if (write || prev.write) && fiber_clock.get(prev.fiber) < prev.clock {
                    on_conflict(RawConflict {
                        word_addr: w * WORD_BYTES,
                        prev,
                    });
                }
            }
            if !skip {
                let i = store_at
                    .or(empty_at)
                    .unwrap_or((w as usize ^ fiber.index()) % SLOTS_PER_WORD);
                slots[i] = new_raw;
            }
        }
    }

    fn word_accesses(&self, addr: u64) -> Vec<ShadowAccess> {
        self.words
            .get(&(addr / WORD_BYTES))
            .map(|s| s.iter().filter(|&&r| r != 0).map(|&r| unpack(r)).collect())
            .unwrap_or_default()
    }
}

// ---- deterministic trace generator ----------------------------------------

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Knuth MMIX constants.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const FIBERS: usize = 6;
const SYNC_KEYS: usize = 4;
/// The tracked arena: 8 pages.
const ARENA_PAGES: u64 = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// (addr, len, write, fiber, ctx)
    Access(u64, u64, bool, usize, u32),
    /// Re-issue the previous access verbatim (fast-path bait).
    RepeatLast,
    /// fiber releases key.
    Release(usize, usize),
    /// fiber acquires key.
    Acquire(usize, usize),
}

fn gen_op(rng: &mut Lcg) -> Op {
    match rng.below(100) {
        // Whole-buffer annotation: 1..=3 pages, page-aligned.
        0..=34 => {
            let pages = 1 + rng.below(3);
            let page = rng.below(ARENA_PAGES - pages + 1);
            Op::Access(
                page * PAGE_BYTES,
                pages * PAGE_BYTES,
                rng.below(2) == 0,
                rng.below(FIBERS as u64) as usize,
                rng.below(8) as u32,
            )
        }
        // Identical re-annotation pressure.
        35..=54 => Op::RepeatLast,
        // Partial / unaligned access (unfold pressure).
        55..=79 => {
            let addr = rng.below(ARENA_PAGES * PAGE_BYTES - 512);
            let len = 1 + rng.below(500);
            Op::Access(
                addr,
                len,
                rng.below(2) == 0,
                rng.below(FIBERS as u64) as usize,
                rng.below(8) as u32,
            )
        }
        // Sync edges.
        80..=89 => Op::Release(
            rng.below(FIBERS as u64) as usize,
            rng.below(SYNC_KEYS as u64) as usize,
        ),
        _ => Op::Acquire(
            rng.below(FIBERS as u64) as usize,
            rng.below(SYNC_KEYS as u64) as usize,
        ),
    }
}

// ---- the differential harness ---------------------------------------------

/// Conflict multiset: (word_addr, packed prev) → count. Multiset (not
/// set) so a fast-path skip that drops a duplicate *emission* on one side
/// would still be caught by the `word_accesses` comparison while the
/// conflict comparison stays meaningful per word.
type Conflicts = BTreeMap<(u64, u64), u64>;

fn record(conflicts: &mut Conflicts, c: RawConflict) {
    *conflicts.entry((c.word_addr, pack(c.prev))).or_insert(0) += 1;
}

fn run_trace(seed: u64, ops: usize, tiered: bool, arena: bool) -> (Conflicts, Conflicts) {
    let mut rng = Lcg(seed);
    let mut dut = ShadowMemory::with_options(tiered, arena);
    let mut reference = ReferenceShadow::default();

    // Happens-before state, maintained once and fed to both shadows.
    let mut clocks: Vec<VectorClock> = (0..FIBERS)
        .map(|f| {
            let mut c = VectorClock::new();
            c.set(FiberId::from_index(f), 1);
            c
        })
        .collect();
    let mut sync: Vec<Option<VectorClock>> = vec![None; SYNC_KEYS];

    let mut dut_conflicts = Conflicts::new();
    let mut ref_conflicts = Conflicts::new();
    let mut last_access: Option<(u64, u64, bool, usize, u32)> = None;

    for i in 0..ops {
        let op = match gen_op(&mut rng) {
            Op::RepeatLast => match last_access {
                // A fast-path hit only happens when nothing else ran in
                // between, which the generator produces often enough.
                Some((a, l, w, f, c)) => Op::Access(a, l, w, f, c),
                None => Op::Access(0, PAGE_BYTES, true, 0, 0),
            },
            op => op,
        };
        match op {
            Op::Access(addr, len, write, f, ctx) => {
                last_access = Some((addr, len, write, f, ctx));
                let fiber = FiberId::from_index(f);
                let clock = clocks[f].get(fiber);
                dut.access_range(
                    addr,
                    len,
                    write,
                    fiber,
                    clock,
                    CtxId(ctx),
                    &clocks[f],
                    |c| record(&mut dut_conflicts, c),
                );
                reference.access_range(
                    addr,
                    len,
                    write,
                    fiber,
                    clock,
                    CtxId(ctx),
                    &clocks[f],
                    |c| record(&mut ref_conflicts, c),
                );
            }
            Op::Release(f, k) => {
                let fiber = FiberId::from_index(f);
                let snapshot = clocks[f].clone();
                match &mut sync[k] {
                    Some(sv) => sv.join(&snapshot),
                    None => sync[k] = Some(snapshot),
                }
                let cur = clocks[f].get(fiber);
                clocks[f].set(fiber, cur + 1);
            }
            Op::Acquire(f, k) => {
                if let Some(sv) = &sync[k] {
                    clocks[f].join(sv);
                }
            }
            Op::RepeatLast => unreachable!(),
        }
        // Spot-check slot-level equality as the trace evolves (cheap:
        // a few words per step).
        if i % 97 == 0 {
            let w = (rng.below(ARENA_PAGES * PAGE_BYTES / WORD_BYTES)) * WORD_BYTES;
            let mut a = dut.word_accesses(w);
            let mut b = reference.word_accesses(w);
            let key = |x: &ShadowAccess| pack(*x);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "seed {seed} step {i}: slots diverged at {w:#x}");
        }
    }

    // Full final sweep over every word both sides could have touched.
    for w in 0..(ARENA_PAGES * PAGE_BYTES / WORD_BYTES) {
        let addr = w * WORD_BYTES;
        let mut a = dut.word_accesses(addr);
        let mut b = reference.word_accesses(addr);
        let key = |x: &ShadowAccess| pack(*x);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "seed {seed}: final slots diverged at {addr:#x}");
    }

    (dut_conflicts, ref_conflicts)
}

/// Conflict *sets* (with per-word granularity) must match exactly. The
/// tiers may legitimately skip re-*emitting* a conflict the reference
/// re-emits (the same-state fast path skips a walk whose conflicts were
/// all emitted by the immediately preceding identical call), so counts
/// are compared only down to "seen at this word about this prev access".
fn assert_same_detections(seed: u64, dut: &Conflicts, reference: &Conflicts) {
    let dut_keys: Vec<_> = dut.keys().collect();
    let ref_keys: Vec<_> = reference.keys().collect();
    assert_eq!(
        dut_keys, ref_keys,
        "seed {seed}: tiered and reference shadows disagree on the conflict set"
    );
    for (k, n) in dut {
        assert!(
            reference[k] >= *n,
            "seed {seed}: tiered shadow over-reports {k:?} ({n} > {})",
            reference[k]
        );
    }
}

#[test]
fn tiered_matches_reference_on_random_traces() {
    // ~10k randomized ops across several seeds, with the page arena both
    // on and off — the allocator must never change detections.
    for arena in [true, false] {
        for seed in [1, 2, 3, 0xDEAD, 0xC0FFEE] {
            let (dut, reference) = run_trace(seed, 2000, true, arena);
            assert_same_detections(seed, &dut, &reference);
            assert!(
                !reference.is_empty(),
                "seed {seed}: trace produced no conflicts — generator is too tame to test anything"
            );
        }
    }
}

#[test]
fn untiered_matches_reference_exactly() {
    // With tiering off the walk is the same algorithm as the reference;
    // even the emission counts must line up.
    for arena in [true, false] {
        for seed in [7, 8] {
            let (dut, reference) = run_trace(seed, 1500, false, arena);
            assert_eq!(
                dut, reference,
                "seed {seed}: untiered shadow diverged from reference (arena={arena})"
            );
        }
    }
}

#[test]
fn fastpath_only_skips_redundant_emissions() {
    // Direct check of the one place tiered emission counts may drop:
    // an identical back-to-back re-annotation.
    let mut tiered = ShadowMemory::new();
    let clk = VectorClock::new();
    let f1 = FiberId::from_index(1);
    let f2 = FiberId::from_index(2);
    tiered.access_range(0, PAGE_BYTES, true, f1, 1, CtxId(0), &clk, |_| {});
    let mut first = 0u64;
    tiered.access_range(0, PAGE_BYTES, false, f2, 1, CtxId(1), &clk, |_| first += 1);
    let mut second = 0u64;
    tiered.access_range(0, PAGE_BYTES, false, f2, 1, CtxId(1), &clk, |_| second += 1);
    assert_eq!(first, PAGE_BYTES / WORD_BYTES);
    assert_eq!(second, 0, "fast path skips the duplicate emission");
    assert_eq!(tiered.counters().fastpath_hits, 1);
}
