//! # cusan — a CUDA-aware sanitizer runtime (the paper's contribution)
//!
//! CuSan (paper §IV) intercepts CUDA API calls and exposes CUDA's
//! concurrency, synchronization, and memory-access semantics to a
//! ThreadSanitizer-style happens-before race detector:
//!
//! * Each CUDA **stream** is modeled as a TSan **fiber**, mirroring the
//!   device's execution contexts (paper §IV-A). The default stream is
//!   tracked eagerly, user streams on demand at creation.
//! * A **kernel launch** switches to the stream's fiber, annotates every
//!   pointer argument's memory range as read and/or written — the access
//!   mode comes from the compiler pass ([`kernel_ir::analysis`]) and the
//!   range extent from TypeART — starts a happens-before arc on the
//!   stream's sync key, and switches back to the host fiber.
//! * **Explicit synchronization** (`cudaDeviceSynchronize`,
//!   `cudaStreamSynchronize`, `cudaEventSynchronize`, `cudaStreamQuery`,
//!   `cudaStreamWaitEvent`) terminates the corresponding arcs with
//!   happens-after annotations.
//! * **Implicit synchronization** (memcpy/memset variants) annotates the
//!   accessed ranges on the stream fiber and synchronizes the host only
//!   when the semantics table ([`cuda_sim::semantics`]) says the call
//!   blocks.
//! * **Legacy default-stream barriers** (paper §III-A) are modeled by
//!   cross-releases between the default stream's sync key and every
//!   blocking user stream's key, consumed lazily by the next operation on
//!   the affected stream.
//!
//! The crate wraps [`cuda_sim::CudaDevice`] in [`CusanCuda`]: applications
//! call the checked API, which first performs the CuSan callback (exactly
//! like the instrumentation the LLVM pass inserts *before* each CUDA call,
//! paper Fig. 9) and then forwards to the simulated runtime.
//!
//! Tool composition and flavors (`Vanilla`, `TSan`, `MUST`, `CuSan`,
//! `MUST & CuSan` — the paper's evaluation matrix) are configured through
//! [`ToolConfig`] / [`Flavor`] and shared via [`ToolCtx`].

pub mod api;
pub mod async_check;
pub mod binio;
pub mod config;
pub mod ctx;
pub mod event;
pub mod fault;
pub mod keys;
pub mod session;
pub mod trace;

pub use api::CusanCuda;
pub use async_check::{effective_workers, AsyncCheckStats, AsyncChecker, CheckerPool};
pub use config::{Flavor, ToolConfig};
pub use ctx::ToolCtx;
pub use event::{
    CheckerSink, CtxInterner, CusanEvent, EventCounters, EventSink, FiberPredictor, StrId,
};
pub use fault::{FaultInjector, FaultPlan, NetFault};
pub use session::{CheckSession, SessionOptions, SessionSummary};
pub use trace::{
    replay, replay_stream, transcode, ReplayOutcome, Trace, TraceFormat, TraceHeader, TraceItem,
    TraceLineParser, TracePushParser, TraceReader, TraceRecord, TraceSink,
};
pub use tsan_rt::SnapshotError;
