//! The checked CUDA API: CuSan's interception layer over the simulated
//! runtime.
//!
//! Every method first executes the CuSan callback — emitting typed
//! [`CusanEvent`]s through the [`ToolCtx`] pipeline, which applies them to
//! TSan (the instrumentation the compiler pass inserts before each CUDA
//! call, paper Fig. 9) — and then forwards to the underlying
//! [`CudaDevice`]. With `cusan` disabled in the [`ToolConfig`] no events
//! are emitted and the layer is a thin passthrough, which is how the
//! Vanilla/TSan/MUST flavors run.
//!
//! Table-I "CUDA" counter rows are mirrored as
//! [`CusanEvent::CounterBump`] events at exactly the call sites where the
//! simulated device increments its own counters, so a recorded trace
//! reproduces the counter table offline.

use crate::config::ToolConfig;
use crate::ctx::ToolCtx;
use crate::event::{counter_names, CusanEvent, StrId};
use crate::keys::{event_key, stream_key};
use cuda_sim::semantics;
use cuda_sim::{
    CopyKind, CudaCounters, CudaDevice, CudaError, DefaultStreamMode, EventId, HostSync,
    StreamFlags, StreamId,
};
use kernel_ir::{KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, AllocationInfo, DeviceId, MemError, MemKind, Pod, PointerAttr, Ptr};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;
use tsan_rt::FiberId;
use typeart_rt::TypeId;

/// One annotated memory range of a device operation.
struct RangeAccess {
    ptr: Ptr,
    len: u64,
    write: bool,
    ctx: StrId,
}

fn mem_kind_label(kind: MemKind) -> &'static str {
    match kind {
        MemKind::HostPageable => "host-pageable",
        MemKind::HostPinned => "host-pinned",
        MemKind::Managed => "managed",
        MemKind::Device(_) => "device",
    }
}

/// The CuSan-checked CUDA API for one rank's device. See module docs.
pub struct CusanCuda {
    dev: CudaDevice,
    tools: Rc<ToolCtx>,
    stream_fibers: HashMap<StreamId, FiberId>,
    nonblocking: HashSet<StreamId>,
    /// Streams whose sync key holds a cross-stream barrier release that the
    /// stream's own fiber has not yet acquired.
    pending_release: HashSet<StreamId>,
    /// Cache of interned kernel-argument contexts: (kernel, arg, write).
    kernel_ctx_cache: HashMap<(KernelId, u32, bool), StrId>,
    ctx_memcpy_src: StrId,
    ctx_memcpy_dst: StrId,
    ctx_memset: StrId,
    ctx_free: StrId,
}

impl CusanCuda {
    /// Wrap a fresh device for `rank`'s tool context.
    ///
    /// Emits the default stream's `FiberCreate` — install any trace sink
    /// on the [`ToolCtx`] *before* constructing the checked API or replay
    /// will miss the event.
    pub fn new(
        device: DeviceId,
        space: Arc<AddressSpace>,
        registry: Arc<KernelRegistry>,
        tools: Rc<ToolCtx>,
    ) -> Self {
        let dev = CudaDevice::new(device, space, registry);
        let (src, dst, ms, fr) = (
            tools.intern_label("cudaMemcpy source [read]"),
            tools.intern_label("cudaMemcpy destination [write]"),
            tools.intern_label("cudaMemset [write]"),
            tools.intern_label("cudaFree [write]"),
        );
        let mut this = CusanCuda {
            dev,
            tools,
            stream_fibers: HashMap::new(),
            nonblocking: HashSet::new(),
            pending_release: HashSet::new(),
            kernel_ctx_cache: HashMap::new(),
            ctx_memcpy_src: src,
            ctx_memcpy_dst: dst,
            ctx_memset: ms,
            ctx_free: fr,
        };
        if this.enabled() {
            // The default stream is always tracked (paper §IV-A a); the
            // device constructor counts it in its `streams` counter.
            this.bump(counter_names::CUDA_STREAMS, 1);
            this.fiber_for(StreamId::DEFAULT);
        }
        this
    }

    fn enabled(&self) -> bool {
        self.tools.config.cusan
    }

    fn config(&self) -> ToolConfig {
        self.tools.config
    }

    /// Fault-injection gate, checked at the top of every fallible call —
    /// before validation and before any detector annotation, so a faulted
    /// call leaves neither device nor happens-before state behind.
    fn fault(&self, call: &'static str) -> Result<(), CudaError> {
        if self.tools.should_fault(call) {
            Err(CudaError::FaultInjected { call })
        } else {
            Ok(())
        }
    }

    /// Fault gate for the allocation family, which surfaces failures as
    /// the underlying memory error (like a real out-of-memory would).
    fn fault_mem(&self, call: &'static str) -> Result<(), CudaError> {
        if self.tools.should_fault(call) {
            Err(CudaError::Mem(MemError::FaultInjected { call }))
        } else {
            Ok(())
        }
    }

    /// Mirror a device counter increment into the event stream.
    fn bump(&self, counter: &str, delta: u64) {
        if self.enabled() {
            let counter = self.tools.intern_label(counter);
            self.tools.emit(CusanEvent::CounterBump { counter, delta });
        }
    }

    /// The underlying shared address space.
    pub fn space(&self) -> &Arc<AddressSpace> {
        self.dev.space()
    }

    /// The kernel registry.
    pub fn registry(&self) -> &Arc<KernelRegistry> {
        self.dev.registry()
    }

    /// The per-rank tool context.
    pub fn tools(&self) -> &Rc<ToolCtx> {
        &self.tools
    }

    /// Device-call counters (Table I "CUDA" rows).
    pub fn counters(&self) -> CudaCounters {
        self.dev.counters()
    }

    /// Raw device access for tests and the MUST harness.
    pub fn device_mut(&mut self) -> &mut CudaDevice {
        &mut self.dev
    }

    /// Select legacy vs per-thread default-stream semantics (paper §VI-B).
    /// In per-thread mode the default stream carries no implicit barriers;
    /// CuSan models it like any other stream. Must be called before work
    /// is enqueued.
    pub fn set_default_stream_mode(&mut self, mode: DefaultStreamMode) {
        self.dev.set_default_stream_mode(mode);
    }

    fn legacy_default(&self) -> bool {
        self.dev.default_stream_mode() == DefaultStreamMode::Legacy
    }

    fn fiber_for(&mut self, s: StreamId) -> FiberId {
        if let Some(&f) = self.stream_fibers.get(&s) {
            return f;
        }
        let name = if s.is_default() {
            "cuda stream 0 (default)".to_string()
        } else {
            format!("cuda stream {}", s.0)
        };
        let f = self.tools.emit_fiber_create(&name);
        self.stream_fibers.insert(s, f);
        f
    }

    fn blocking_user_streams(&self) -> Vec<StreamId> {
        self.dev
            .live_streams()
            .into_iter()
            .filter(|s| !s.is_default() && !self.nonblocking.contains(s))
            .collect()
    }

    /// Every tracked stream, in stream-id order. The fiber map iterates in
    /// hash order, which must never leak into the (deterministic) event
    /// stream.
    fn tracked_streams_sorted(&self) -> Vec<StreamId> {
        let mut streams: Vec<StreamId> = self.stream_fibers.keys().copied().collect();
        streams.sort_unstable_by_key(|s| s.0);
        streams
    }

    /// The CuSan callback for a device operation on stream `s`: switch to
    /// the stream's fiber, consume any pending cross-stream barrier
    /// release, annotate the accessed ranges, start the stream's
    /// happens-before arc, push legacy default-stream barrier releases,
    /// and switch back to the host fiber (paper §IV-A b–e).
    fn stream_op(&mut self, s: StreamId, accesses: &[RangeAccess]) {
        if !self.enabled() {
            return;
        }
        let fiber = self.fiber_for(s);
        self.tools
            .emit(CusanEvent::FiberSwitch { fiber, sync: true });
        if self.pending_release.remove(&s) {
            self.tools
                .emit(CusanEvent::HappensAfter { key: stream_key(s) });
        }
        if self.config().track_access_ranges {
            for a in accesses {
                self.tools.emit(if a.write {
                    CusanEvent::WriteRange {
                        addr: a.ptr.addr(),
                        len: a.len,
                        ctx: a.ctx,
                    }
                } else {
                    CusanEvent::ReadRange {
                        addr: a.ptr.addr(),
                        len: a.len,
                        ctx: a.ctx,
                    }
                });
            }
        }
        self.tools
            .emit(CusanEvent::HappensBefore { key: stream_key(s) });
        // Legacy default-stream logical barriers (Fig. 3). Per-thread
        // default-stream mode (§VI-B) has no implicit barriers.
        let is_legacy_blocking =
            self.legacy_default() && (s.is_default() || !self.nonblocking.contains(&s));
        if is_legacy_blocking {
            let targets: Vec<StreamId> = if s.is_default() {
                self.blocking_user_streams()
            } else {
                vec![StreamId::DEFAULT]
            };
            for &u in &targets {
                self.tools
                    .emit(CusanEvent::HappensBefore { key: stream_key(u) });
            }
            self.pending_release.extend(targets);
        }
        self.tools.emit(CusanEvent::FiberSwitch {
            fiber: FiberId::HOST,
            sync: false,
        });
    }

    /// Host-side happens-after on a stream's arc (explicit or implicit
    /// host synchronization).
    fn host_sync_stream(&mut self, s: StreamId) {
        if !self.enabled() {
            return;
        }
        self.tools
            .emit(CusanEvent::HappensAfter { key: stream_key(s) });
    }

    // ---- memory management ----------------------------------------------------

    fn on_alloc(&self, ptr: Ptr, type_id: TypeId, count: u64, bytes: u64, kind: MemKind) {
        if self.config().typeart {
            // An overlapping registration means the allocator handed out a
            // live range twice. The checker degrades rather than aborts:
            // the allocation stays untracked (no extent, no Alloc event)
            // and the inconsistency is reported as a diagnostic.
            if let Err(e) = self
                .tools
                .typeart
                .borrow_mut()
                .on_alloc(ptr, type_id, count, kind)
            {
                self.tools
                    .report_diagnostic(format!("typeart: allocation at {ptr} not tracked: {e}"));
                return;
            }
            let kind = self.tools.intern_label(mem_kind_label(kind));
            self.tools.emit(CusanEvent::Alloc {
                addr: ptr.addr(),
                bytes,
                kind,
            });
        }
    }

    fn type_id_of<T: Pod>(&self) -> TypeId {
        self.tools
            .typeart
            .borrow_mut()
            .registry_mut()
            .register(T::NAME, T::SIZE as u64)
    }

    /// `cudaMalloc` for `n` elements of `T`.
    pub fn malloc<T: Pod>(&mut self, n: u64) -> Result<Ptr, CudaError> {
        self.fault_mem("cudaMalloc")?;
        let p = self.dev.malloc_array::<T>(n)?;
        let tid = self.type_id_of::<T>();
        let bytes = n * T::SIZE as u64;
        self.on_alloc(p, tid, n, bytes, MemKind::Device(self.dev.id()));
        Ok(p)
    }

    /// `cudaMallocManaged` for `n` elements of `T`.
    pub fn malloc_managed<T: Pod>(&mut self, n: u64) -> Result<Ptr, CudaError> {
        self.fault_mem("cudaMallocManaged")?;
        let bytes = n * T::SIZE as u64;
        let p = self.dev.malloc_managed(bytes)?;
        let tid = self.type_id_of::<T>();
        self.on_alloc(p, tid, n, bytes, MemKind::Managed);
        Ok(p)
    }

    /// `cudaHostAlloc` (pinned) for `n` elements of `T`.
    pub fn host_alloc<T: Pod>(&mut self, n: u64) -> Result<Ptr, CudaError> {
        self.fault_mem("cudaHostAlloc")?;
        let bytes = n * T::SIZE as u64;
        let p = self.dev.host_alloc(bytes)?;
        let tid = self.type_id_of::<T>();
        self.on_alloc(p, tid, n, bytes, MemKind::HostPinned);
        Ok(p)
    }

    /// Pageable host `malloc` for `n` elements of `T`.
    pub fn host_malloc<T: Pod>(&mut self, n: u64) -> Result<Ptr, CudaError> {
        self.fault_mem("malloc")?;
        let bytes = n * T::SIZE as u64;
        let p = self.dev.host_malloc(bytes)?;
        let tid = self.type_id_of::<T>();
        self.on_alloc(p, tid, n, bytes, MemKind::HostPageable);
        Ok(p)
    }

    /// `cudaFree` (+ plain `free`): synchronizes the device, annotates the
    /// release as a host write (a kernel or MPI operation still using the
    /// buffer is a race), and drops tracking.
    pub fn free(&mut self, ptr: Ptr) -> Result<AllocationInfo, CudaError> {
        self.fault_mem("cudaFree")?;
        // A free that will fail (double free, interior pointer) must not
        // run the synchronize-and-annotate protocol below: the detector
        // would record phantom stream syncs for an operation that never
        // happened.
        self.dev.free_validate(ptr)?;
        // cudaFree synchronizes with the host across all streams
        // (paper §III-B2) — terminate every stream arc first.
        if self.enabled() {
            for s in self.tracked_streams_sorted() {
                self.host_sync_stream(s);
            }
        }
        let info = self.dev.free(ptr)?;
        // The free-as-write annotation is a CuSan callback: plain TSan has
        // no visibility into CUDA allocations (paper §II-B a).
        if self.enabled() {
            self.tools.emit(CusanEvent::WriteRange {
                addr: info.base.addr(),
                len: info.len,
                ctx: self.ctx_free,
            });
        }
        if self.config().typeart {
            let _ = self.tools.typeart.borrow_mut().on_free(info.base);
            self.tools.emit(CusanEvent::Free {
                addr: info.base.addr(),
                bytes: info.len,
            });
        }
        Ok(info)
    }

    /// `cuPointerGetAttribute` passthrough.
    pub fn pointer_attributes(&self, ptr: Ptr) -> Result<PointerAttr, CudaError> {
        self.fault("cuPointerGetAttribute")?;
        self.dev.pointer_attributes(ptr)
    }

    // ---- streams ---------------------------------------------------------------

    /// `cudaStreamCreate(WithFlags)`: tracked on demand with its
    /// non-blocking attribute (paper §IV-A a).
    pub fn stream_create(&mut self, flags: StreamFlags) -> StreamId {
        let s = self.dev.stream_create(flags);
        if matches!(flags, StreamFlags::NonBlocking) {
            self.nonblocking.insert(s);
        }
        if self.enabled() {
            self.bump(counter_names::CUDA_STREAMS, 1);
            self.fiber_for(s);
        }
        s
    }

    /// `cudaStreamDestroy`: completes outstanding work (host sync).
    pub fn stream_destroy(&mut self, s: StreamId) -> Result<(), CudaError> {
        self.fault("cudaStreamDestroy")?;
        self.dev.stream_destroy(s)?;
        self.host_sync_stream(s);
        Ok(())
    }

    // ---- kernel launch -----------------------------------------------------------

    /// Kernel launch: the central CuSan callback (paper §IV-A b).
    pub fn launch(
        &mut self,
        kernel: KernelId,
        grid: LaunchGrid,
        stream: StreamId,
        args: Vec<LaunchArg>,
    ) -> Result<(), CudaError> {
        self.fault("cudaLaunchKernel")?;
        // Validate the stream before annotating: a call that will fail in
        // the runtime must not leave phantom accesses in the detector.
        self.dev.stream_flags(stream)?;
        if self.enabled() {
            let accesses = self.kernel_accesses(kernel, grid, &args);
            self.stream_op(stream, &accesses);
        }
        // The device counts the call even when launch validation fails.
        self.bump(counter_names::CUDA_KERNEL, 1);
        self.dev.launch(kernel, grid, stream, args)
    }

    /// Resolve the annotated ranges for a launch: access mode from the
    /// compiler pass, extent from TypeART (paper Fig. 9). With bounded
    /// tracking (§VI-D), tid-bounded arguments are clipped to the range
    /// the launch geometry can actually touch.
    fn kernel_accesses(
        &mut self,
        kernel: KernelId,
        grid: LaunchGrid,
        args: &[LaunchArg],
    ) -> Vec<RangeAccess> {
        if !self.config().track_access_ranges {
            return Vec::new();
        }
        let analysis = self.dev.registry().analysis();
        let attrs = analysis.kernel(kernel).to_vec();
        let bounded_cfg = self.config().bounded_tracking;
        let mut out = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            let LaunchArg::Ptr(p) = arg else { continue };
            let attr = match attrs.get(i) {
                Some(a) if a.any() => *a,
                _ => continue,
            };
            let Some(extent) = self.tools.typeart.borrow_mut().extent_of(*p) else {
                // Untracked allocation: nothing to annotate (TypeART is the
                // only source of extents, paper §IV-C).
                continue;
            };
            let len = if bounded_cfg && analysis.tid_bounded(kernel, i) {
                let elem = self.dev.registry().def(kernel).params[i].ty.scalar().size();
                extent.min(grid.total() * elem)
            } else {
                extent
            };
            for write in [false, true] {
                if (write && attr.write) || (!write && attr.read) {
                    let ctx = self.kernel_arg_ctx(kernel, i as u32, write);
                    out.push(RangeAccess {
                        ptr: *p,
                        len,
                        write,
                        ctx,
                    });
                }
            }
        }
        out
    }

    fn kernel_arg_ctx(&mut self, kernel: KernelId, arg: u32, write: bool) -> StrId {
        if let Some(&c) = self.kernel_ctx_cache.get(&(kernel, arg, write)) {
            return c;
        }
        let def = self.dev.registry().def(kernel);
        let label = format!(
            "kernel {} arg#{arg} ({}) [{}]",
            def.name,
            def.params[arg as usize].name,
            if write { "write" } else { "read" }
        );
        let c = self.tools.intern_label(&label);
        self.kernel_ctx_cache.insert((kernel, arg, write), c);
        c
    }

    // ---- memory operations ----------------------------------------------------------

    /// `cudaMemcpy`: annotated as a default-stream operation; blocks the
    /// host (and terminates the arc) per the semantics table.
    pub fn memcpy(
        &mut self,
        dst: Ptr,
        src: Ptr,
        len: u64,
        kind: CopyKind,
    ) -> Result<(), CudaError> {
        self.memcpy_impl(dst, src, len, kind, StreamId::DEFAULT, false)
    }

    /// `cudaMemcpyAsync` on a stream.
    pub fn memcpy_async(
        &mut self,
        dst: Ptr,
        src: Ptr,
        len: u64,
        kind: CopyKind,
        stream: StreamId,
    ) -> Result<(), CudaError> {
        self.memcpy_impl(dst, src, len, kind, stream, true)
    }

    fn memcpy_impl(
        &mut self,
        dst: Ptr,
        src: Ptr,
        len: u64,
        kind: CopyKind,
        stream: StreamId,
        is_async: bool,
    ) -> Result<(), CudaError> {
        self.fault(if is_async {
            "cudaMemcpyAsync"
        } else {
            "cudaMemcpy"
        })?;
        self.dev.stream_flags(stream)?;
        let mut host_sync = false;
        if self.enabled() {
            let dk = self.dev.pointer_attributes(dst)?.kind;
            let sk = self.dev.pointer_attributes(src)?.kind;
            let resolved = semantics::resolve_copy_kind(kind, dk, sk)?;
            host_sync = semantics::memcpy_host_sync(resolved, is_async) == HostSync::Blocking;
            let accesses = [
                RangeAccess {
                    ptr: src,
                    len,
                    write: false,
                    ctx: self.ctx_memcpy_src,
                },
                RangeAccess {
                    ptr: dst,
                    len,
                    write: true,
                    ctx: self.ctx_memcpy_dst,
                },
            ];
            self.stream_op(
                stream,
                if self.config().track_access_ranges {
                    &accesses
                } else {
                    &[]
                },
            );
        }
        self.bump(counter_names::CUDA_MEMCPY, 1);
        if is_async {
            self.dev.memcpy_async(dst, src, len, kind, stream)?;
        } else {
            self.dev.memcpy(dst, src, len, kind)?;
        }
        if host_sync {
            self.host_sync_stream(stream);
        }
        Ok(())
    }

    /// `cudaMemcpy2D`: each transferred row is annotated individually, so
    /// the detector sees the precise strided footprint rather than a
    /// bounding box.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_2d(
        &mut self,
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
        kind: CopyKind,
    ) -> Result<(), CudaError> {
        self.memcpy_2d_impl(
            dst,
            dpitch,
            src,
            spitch,
            width,
            height,
            kind,
            StreamId::DEFAULT,
            false,
        )
    }

    /// `cudaMemcpy2DAsync` on a stream.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_2d_async(
        &mut self,
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
        kind: CopyKind,
        stream: StreamId,
    ) -> Result<(), CudaError> {
        self.memcpy_2d_impl(dst, dpitch, src, spitch, width, height, kind, stream, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn memcpy_2d_impl(
        &mut self,
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
        kind: CopyKind,
        stream: StreamId,
        is_async: bool,
    ) -> Result<(), CudaError> {
        self.fault(if is_async {
            "cudaMemcpy2DAsync"
        } else {
            "cudaMemcpy2D"
        })?;
        let mut host_sync = false;
        if self.enabled() {
            let dk = self.dev.pointer_attributes(dst)?.kind;
            let sk = self.dev.pointer_attributes(src)?.kind;
            let resolved = semantics::resolve_copy_kind(kind, dk, sk)?;
            host_sync = semantics::memcpy_host_sync(resolved, is_async) == HostSync::Blocking;
            if self.config().track_access_ranges {
                let mut accesses = Vec::with_capacity(2 * height as usize);
                for row in 0..height {
                    accesses.push(RangeAccess {
                        ptr: src.offset(row * spitch),
                        len: width,
                        write: false,
                        ctx: self.ctx_memcpy_src,
                    });
                    accesses.push(RangeAccess {
                        ptr: dst.offset(row * dpitch),
                        len: width,
                        write: true,
                        ctx: self.ctx_memcpy_dst,
                    });
                }
                self.stream_op(stream, &accesses);
            } else {
                self.stream_op(stream, &[]);
            }
        }
        // The device rejects a width exceeding either pitch before counting
        // the call — mirror that ordering.
        if width <= dpitch && width <= spitch {
            self.bump(counter_names::CUDA_MEMCPY, 1);
        }
        if is_async {
            self.dev
                .memcpy_2d_async(dst, dpitch, src, spitch, width, height, kind, stream)?;
        } else {
            self.dev
                .memcpy_2d(dst, dpitch, src, spitch, width, height, kind)?;
        }
        if host_sync {
            self.host_sync_stream(stream);
        }
        Ok(())
    }

    /// `cudaMemset`.
    pub fn memset(&mut self, ptr: Ptr, value: u8, len: u64) -> Result<(), CudaError> {
        self.memset_impl(ptr, value, len, StreamId::DEFAULT, false)
    }

    /// `cudaMemsetAsync` on a stream.
    pub fn memset_async(
        &mut self,
        ptr: Ptr,
        value: u8,
        len: u64,
        stream: StreamId,
    ) -> Result<(), CudaError> {
        self.memset_impl(ptr, value, len, stream, true)
    }

    fn memset_impl(
        &mut self,
        ptr: Ptr,
        value: u8,
        len: u64,
        stream: StreamId,
        is_async: bool,
    ) -> Result<(), CudaError> {
        self.fault(if is_async {
            "cudaMemsetAsync"
        } else {
            "cudaMemset"
        })?;
        self.dev.stream_flags(stream)?;
        let mut host_sync = false;
        if self.enabled() {
            let kind = self.dev.pointer_attributes(ptr)?.kind;
            host_sync = semantics::memset_host_sync(kind, is_async) == HostSync::Blocking;
            let accesses = [RangeAccess {
                ptr,
                len,
                write: true,
                ctx: self.ctx_memset,
            }];
            self.stream_op(
                stream,
                if self.config().track_access_ranges {
                    &accesses
                } else {
                    &[]
                },
            );
        }
        self.bump(counter_names::CUDA_MEMSET, 1);
        if is_async {
            self.dev.memset_async(ptr, value, len, stream)?;
        } else {
            self.dev.memset(ptr, value, len)?;
        }
        if host_sync {
            self.host_sync_stream(stream);
        }
        Ok(())
    }

    // ---- explicit synchronization ------------------------------------------------------

    /// `cudaDeviceSynchronize`: terminates the arc of every tracked stream
    /// (paper §IV-A c).
    pub fn device_synchronize(&mut self) -> Result<(), CudaError> {
        self.fault("cudaDeviceSynchronize")?;
        let r = self.dev.device_synchronize();
        self.bump(counter_names::CUDA_SYNC, 1);
        r?;
        if self.enabled() {
            for s in self.tracked_streams_sorted() {
                self.host_sync_stream(s);
            }
        }
        Ok(())
    }

    /// `cudaStreamSynchronize`: terminates the stream's arc; synchronizing
    /// the legacy default stream also terminates every blocking user
    /// stream's arc (paper §IV-A e).
    pub fn stream_synchronize(&mut self, s: StreamId) -> Result<(), CudaError> {
        self.fault("cudaStreamSynchronize")?;
        let r = self.dev.stream_synchronize(s);
        self.bump(counter_names::CUDA_SYNC, 1);
        r?;
        self.host_sync_stream(s);
        if self.enabled() && s.is_default() && self.legacy_default() {
            for u in self.blocking_user_streams() {
                self.host_sync_stream(u);
            }
        }
        Ok(())
    }

    /// `cudaStreamQuery`, treated as a blocking busy-wait synchronization
    /// (paper §III-B1).
    pub fn stream_query(&mut self, s: StreamId) -> Result<bool, CudaError> {
        self.fault("cudaStreamQuery")?;
        // Propagate before counting: a query of a destroyed stream never
        // reached the device and must leave no trace in the event stream.
        let done = self.dev.stream_query(s)?;
        self.bump(counter_names::CUDA_SYNC, 1);
        self.host_sync_stream(s);
        if self.enabled() && s.is_default() && self.legacy_default() {
            for u in self.blocking_user_streams() {
                self.host_sync_stream(u);
            }
        }
        Ok(done)
    }

    // ---- events -------------------------------------------------------------------------

    /// `cudaEventCreate`.
    pub fn event_create(&mut self) -> EventId {
        self.dev.event_create()
    }

    /// `cudaEventRecord`: a stream operation that additionally releases
    /// the event's own arc (fine-grained sync marker, paper §III-B1).
    pub fn event_record(&mut self, e: EventId, stream: StreamId) -> Result<(), CudaError> {
        self.fault("cudaEventRecord")?;
        // Validate both handles before annotating: a record that will
        // fail must not release the event's happens-before arc.
        self.dev.stream_flags(stream)?;
        self.dev.event_validate(e)?;
        if self.enabled() {
            self.stream_op(stream, &[]);
            let fiber = self.fiber_for(stream);
            self.tools
                .emit(CusanEvent::FiberSwitch { fiber, sync: true });
            self.tools
                .emit(CusanEvent::HappensBefore { key: event_key(e) });
            self.tools.emit(CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            });
        }
        self.dev.event_record(e, stream)
    }

    /// `cudaEventSynchronize`: host waits for the marker.
    pub fn event_synchronize(&mut self, e: EventId) -> Result<(), CudaError> {
        self.fault("cudaEventSynchronize")?;
        self.dev.event_synchronize(e)?;
        self.bump(counter_names::CUDA_SYNC, 1);
        if self.enabled() {
            self.tools
                .emit(CusanEvent::HappensAfter { key: event_key(e) });
        }
        Ok(())
    }

    /// `cudaEventQuery` (non-forcing; a `true` result is a synchronization).
    pub fn event_query(&mut self, e: EventId) -> Result<bool, CudaError> {
        self.fault("cudaEventQuery")?;
        let done = self.dev.event_query(e)?;
        if done && self.enabled() {
            self.tools
                .emit(CusanEvent::HappensAfter { key: event_key(e) });
        }
        Ok(done)
    }

    /// `cudaEventDestroy`.
    pub fn event_destroy(&mut self, e: EventId) -> Result<(), CudaError> {
        self.fault("cudaEventDestroy")?;
        self.dev.event_destroy(e)
    }

    /// `cudaStreamWaitEvent`: the *stream* (not the host) acquires the
    /// event's arc.
    pub fn stream_wait_event(&mut self, stream: StreamId, e: EventId) -> Result<(), CudaError> {
        self.fault("cudaStreamWaitEvent")?;
        let r = self.dev.stream_wait_event(stream, e);
        self.bump(counter_names::CUDA_SYNC, 1);
        r?;
        if self.enabled() {
            let fiber = self.fiber_for(stream);
            self.tools
                .emit(CusanEvent::FiberSwitch { fiber, sync: true });
            self.tools
                .emit(CusanEvent::HappensAfter { key: event_key(e) });
            self.tools.emit(CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            });
        }
        Ok(())
    }

    /// Flush all outstanding device work (teardown; not an annotated
    /// synchronization).
    pub fn flush(&mut self) -> Result<(), CudaError> {
        self.fault("cudaFlush")?;
        self.dev.flush()
    }
}
