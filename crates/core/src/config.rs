//! Tool configuration and the evaluation-flavor matrix.

use crate::fault::FaultPlan;
use crate::trace::TraceFormat;
use std::fmt;

/// Which instrumentation layers are active.
///
/// The flags mirror the paper's tool stack: TSan host-code
/// instrumentation, MUST's MPI interception, CuSan's CUDA interception,
/// and TypeART allocation tracking. [`Flavor`] provides the five
/// canonical combinations used in the evaluation; custom combinations are
/// possible for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolConfig {
    /// TSan host-access instrumentation (the compiler pass's load/store
    /// tracking of user host code).
    pub tsan: bool,
    /// MUST: annotate MPI calls, model non-blocking requests as fibers.
    pub must: bool,
    /// CuSan: annotate CUDA calls, model streams as fibers.
    pub cusan: bool,
    /// TypeART: track allocations (required by CuSan for extents).
    pub typeart: bool,
    /// CuSan's memory-range annotations for kernel arguments and memory
    /// ops. Disabling this (with `cusan` on) is the §V-B ablation: "
    /// completely removing memory annotations but keeping the rest of our
    /// instrumentation brings the overhead down to almost vanilla".
    pub track_access_ranges: bool,
    /// Bounded access tracking (the §VI-D future-work optimization):
    /// when the compiler pass proves a kernel argument *tid-bounded*
    /// (every access indexes with the thread id), annotate only
    /// `grid size × element size` bytes instead of the whole allocation.
    /// Sound per the analysis; reduces tracked volume — and the false
    /// positives whole-allocation annotation can produce — for
    /// boundary-region kernels. Off by default to match the paper.
    pub bounded_tracking: bool,
    /// Tiered shadow memory: page summaries for whole-page annotations
    /// plus a same-state fast path for identical re-annotations. Purely a
    /// performance tier — detection results are identical either way (see
    /// `crates/tsan/tests/shadow_differential.rs`). On by default; the
    /// `CUSAN_SHADOW_TIERED=0` environment knob (read in
    /// [`crate::ToolCtx::new`]) forces the flat O(bytes) walk for A/B
    /// measurements of the Fig. 12 slope.
    pub shadow_tiered: bool,
    /// Shadow page arena: carve unfolded shadow pages from geometrically
    /// grown slabs with a recycling free list instead of one boxed
    /// allocation per page. Purely an allocation strategy — detection
    /// results are bit-for-bit identical either way. On by default; the
    /// `CUSAN_SHADOW_ARENA=0` knob (read in [`crate::ToolCtx::new`])
    /// restores the per-page allocator for A/B benchmarking.
    pub shadow_arena: bool,
    /// Deterministic fault injection (see [`crate::fault`]): at each
    /// intercepted CUDA/MPI call, the plan decides whether the call
    /// returns its typed error instead of running. Disabled by default;
    /// the `CUSAN_FAULTS=<seed>:<rate>` knob (read in
    /// [`crate::ToolCtx::new`]) overrides this field process-wide.
    pub faults: FaultPlan,
    /// Shadow-memory page budget: once the detector owns this many shadow
    /// pages it degrades to counted best-effort mode — range annotations
    /// needing *new* pages are dropped and counted
    /// (`TsanStats::dropped_annotations`) instead of growing the shadow
    /// unboundedly. `None` (the default) is unlimited.
    pub shadow_page_budget: Option<usize>,
    /// Asynchronous checking: push events into a bounded SPSC ring
    /// drained by the shared checker pool instead of applying them
    /// inline (see `crates/core/src/async_check.rs`). Pure execution
    /// strategy — traces, stats, and race reports are bit-for-bit
    /// identical to sync mode. Off by default; the `CUSAN_ASYNC_CHECK=1`
    /// knob (read in [`crate::ToolCtx::new`]) overrides this field
    /// process-wide.
    pub async_check: bool,
    /// Worker-thread count for the shared async checker pool
    /// (ignored when `async_check` is off). `None` (the default) sizes
    /// the pool from hardware — `min(active ranks,
    /// available_parallelism − 1)`, at least one — keeping detection
    /// work proportional to backlog rather than rank count. The
    /// `CUSAN_CHECK_THREADS=<n>` knob (read in [`crate::ToolCtx::new`])
    /// overrides this field process-wide.
    pub check_threads: Option<usize>,
    /// Poison timeout for the simulated-MPI barriers, in milliseconds: a
    /// rank stuck this long in `mpi-sim`'s `SimBarrier` (world barrier
    /// or collective phase barrier) poisons the barrier and every waiter
    /// gets a typed timeout error instead of hanging. `None` (the
    /// default) keeps the built-in 20 s. The `CUSAN_BARRIER_TIMEOUT_MS`
    /// knob (read in [`crate::ToolCtx::new`] and the MUST harness)
    /// overrides this field process-wide.
    pub barrier_timeout_ms: Option<u64>,
    /// Encoding the per-rank [`crate::TraceSink`] writes when recording
    /// is on: v2 text (the default, human-greppable) or v3 binary (~3×
    /// fewer bytes; see [`crate::binio`]). Readers sniff the format from
    /// the magic, so this is producer-side only. The
    /// `CUSAN_TRACE_FORMAT={text,binary}` knob (read in
    /// [`crate::ToolCtx::new`]) overrides this field process-wide.
    pub trace_format: TraceFormat,
}

impl ToolConfig {
    /// Everything off (the uninstrumented baseline).
    pub const VANILLA: ToolConfig = ToolConfig {
        tsan: false,
        must: false,
        cusan: false,
        typeart: false,
        track_access_ranges: false,
        bounded_tracking: false,
        shadow_tiered: true,
        shadow_arena: true,
        faults: FaultPlan::DISABLED,
        shadow_page_budget: None,
        async_check: false,
        check_threads: None,
        barrier_timeout_ms: None,
        trace_format: TraceFormat::Text,
    };

    /// True if any TSan-backed layer is on.
    pub fn any_tsan(&self) -> bool {
        self.tsan || self.must || self.cusan
    }
}

/// The five tool combinations evaluated in the paper (Figs. 10 and 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// Uninstrumented application.
    Vanilla,
    /// ThreadSanitizer only.
    Tsan,
    /// MUST (with TSan), checking (non-blocking) MPI communication.
    Must,
    /// CuSan (with TSan and TypeART).
    Cusan,
    /// MUST and CuSan combined — the full CUDA-aware MPI checker.
    MustCusan,
}

impl Flavor {
    /// All flavors, in the order the paper's figures list them.
    pub const ALL: [Flavor; 5] = [
        Flavor::Vanilla,
        Flavor::Tsan,
        Flavor::Must,
        Flavor::Cusan,
        Flavor::MustCusan,
    ];

    /// The instrumentation configuration for this flavor.
    pub fn config(self) -> ToolConfig {
        match self {
            Flavor::Vanilla => ToolConfig::VANILLA,
            Flavor::Tsan => ToolConfig {
                tsan: true,
                must: false,
                cusan: false,
                typeart: false,
                track_access_ranges: false,
                bounded_tracking: false,
                shadow_tiered: true,
                shadow_arena: true,
                faults: FaultPlan::DISABLED,
                shadow_page_budget: None,
                async_check: false,
                check_threads: None,
                barrier_timeout_ms: None,
                trace_format: TraceFormat::Text,
            },
            Flavor::Must => ToolConfig {
                tsan: true,
                must: true,
                cusan: false,
                typeart: false,
                track_access_ranges: false,
                bounded_tracking: false,
                shadow_tiered: true,
                shadow_arena: true,
                faults: FaultPlan::DISABLED,
                shadow_page_budget: None,
                async_check: false,
                check_threads: None,
                barrier_timeout_ms: None,
                trace_format: TraceFormat::Text,
            },
            Flavor::Cusan => ToolConfig {
                tsan: true,
                must: false,
                cusan: true,
                typeart: true,
                track_access_ranges: true,
                bounded_tracking: false,
                shadow_tiered: true,
                shadow_arena: true,
                faults: FaultPlan::DISABLED,
                shadow_page_budget: None,
                async_check: false,
                check_threads: None,
                barrier_timeout_ms: None,
                trace_format: TraceFormat::Text,
            },
            Flavor::MustCusan => ToolConfig {
                tsan: true,
                must: true,
                cusan: true,
                typeart: true,
                track_access_ranges: true,
                bounded_tracking: false,
                shadow_tiered: true,
                shadow_arena: true,
                faults: FaultPlan::DISABLED,
                shadow_page_budget: None,
                async_check: false,
                check_threads: None,
                barrier_timeout_ms: None,
                trace_format: TraceFormat::Text,
            },
        }
    }
}

impl From<Flavor> for ToolConfig {
    fn from(f: Flavor) -> ToolConfig {
        f.config()
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flavor::Vanilla => "Vanilla",
            Flavor::Tsan => "TSan",
            Flavor::Must => "MUST",
            Flavor::Cusan => "CuSan",
            Flavor::MustCusan => "MUST & CuSan",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_is_all_off() {
        let c = Flavor::Vanilla.config();
        assert!(!c.any_tsan());
        assert!(!c.typeart);
    }

    #[test]
    fn cusan_requires_typeart() {
        // Paper §V: "Only CuSan uses TypeART".
        assert!(Flavor::Cusan.config().typeart);
        assert!(Flavor::MustCusan.config().typeart);
        assert!(!Flavor::Must.config().typeart);
        assert!(!Flavor::Tsan.config().typeart);
    }

    #[test]
    fn must_and_cusan_always_run_with_tsan() {
        // Paper §V: "CuSan and MUST are always executed with TSan enabled".
        for f in [Flavor::Must, Flavor::Cusan, Flavor::MustCusan] {
            assert!(f.config().tsan);
            assert!(f.config().any_tsan());
        }
    }

    #[test]
    fn shadow_tiering_defaults_on_everywhere() {
        // The tiers and the page arena are pure perf; every flavor keeps
        // them unless the env knobs (handled in ToolCtx) turn them off.
        for f in Flavor::ALL {
            assert!(f.config().shadow_tiered, "{f}");
            assert!(f.config().shadow_arena, "{f}");
        }
        let vanilla = ToolConfig::VANILLA;
        assert!(vanilla.shadow_tiered);
        assert!(vanilla.shadow_arena);
    }

    #[test]
    fn faults_and_budget_default_off_everywhere() {
        // Fault injection and the shadow budget are opt-in: every flavor
        // (and VANILLA) ships with both disabled so behavior is
        // byte-identical to the pre-fault-injection stack.
        for f in Flavor::ALL {
            assert_eq!(f.config().faults, FaultPlan::DISABLED, "{f}");
            assert!(!f.config().faults.enabled(), "{f}");
            assert_eq!(f.config().shadow_page_budget, None, "{f}");
            assert!(!f.config().async_check, "{f}: sync is the A/B default");
        }
        assert_eq!(ToolConfig::VANILLA.faults, FaultPlan::DISABLED);
        assert_eq!(ToolConfig::VANILLA.shadow_page_budget, None);
        const { assert!(!ToolConfig::VANILLA.async_check) } // sync is the A/B default
    }

    #[test]
    fn check_threads_defaults_to_hardware_sizing() {
        // `None` lets the shared checker pool size itself from hardware;
        // no flavor pins a worker count.
        for f in Flavor::ALL {
            assert_eq!(f.config().check_threads, None, "{f}");
        }
        assert_eq!(ToolConfig::VANILLA.check_threads, None);
    }

    #[test]
    fn trace_format_defaults_to_text() {
        // Binary recording is opt-in (CUSAN_TRACE_FORMAT=binary); the
        // text default keeps fresh recordings greppable and fixtures
        // stable.
        for f in Flavor::ALL {
            assert_eq!(f.config().trace_format, TraceFormat::Text, "{f}");
        }
        assert_eq!(ToolConfig::VANILLA.trace_format, TraceFormat::Text);
    }

    #[test]
    fn display_names_match_figures() {
        assert_eq!(Flavor::MustCusan.to_string(), "MUST & CuSan");
        assert_eq!(Flavor::Tsan.to_string(), "TSan");
        assert_eq!(Flavor::ALL.len(), 5);
    }
}
