//! Synchronization-key derivation.
//!
//! TSan's annotation API keys synchronization on memory addresses; CuSan
//! and MUST key it on the identity of the synchronizing object instead:
//! the stream, the event, or the MPI request. Disjoint tag bits keep the
//! key spaces from colliding.

use cuda_sim::{EventId, StreamId};
use tsan_rt::SyncKey;

const STREAM_TAG: u64 = 0x0100_0000_0000;
const EVENT_TAG: u64 = 0x0200_0000_0000;
const REQUEST_TAG: u64 = 0x0300_0000_0000;

/// Sync key of a CUDA stream's happens-before arc.
pub fn stream_key(s: StreamId) -> SyncKey {
    SyncKey(STREAM_TAG | u64::from(s.0))
}

/// Sync key of a CUDA event.
pub fn event_key(e: EventId) -> SyncKey {
    SyncKey(EVENT_TAG | u64::from(e.0))
}

/// Sync key of a non-blocking MPI request (serial number allocated by
/// [`crate::ToolCtx::next_request_serial`]).
pub fn request_key(serial: u64) -> SyncKey {
    SyncKey(REQUEST_TAG | serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_spaces_are_disjoint() {
        assert_ne!(stream_key(StreamId(1)), event_key(EventId(1)));
        assert_ne!(stream_key(StreamId(1)), request_key(1));
        assert_ne!(event_key(EventId(1)), request_key(1));
    }

    #[test]
    fn keys_are_injective_within_space() {
        assert_ne!(stream_key(StreamId(0)), stream_key(StreamId(1)));
        assert_ne!(event_key(EventId(3)), event_key(EventId(4)));
        assert_ne!(request_key(10), request_key(11));
    }
}
