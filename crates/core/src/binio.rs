//! LEB128 varint primitives and the v3 binary trace codec.
//!
//! The compact twin of the v2 text trace format (see [`crate::trace`]):
//! the same header fields and the same record stream — string-table
//! entries interleaved with events, emitted before first use — encoded
//! as length-delimited binary records instead of lines. One trace is
//!
//! ```text
//! magic   := "cusanbt3"                       (8 bytes; version in the magic)
//! header  := varint(rank) u8(tiered) varint(budget+1 | 0 = none)
//! body    := record*
//! record  := varint(payload_len) payload      (length-delimited framing)
//! payload := opcode u8, fields…               (see the opcode table)
//! ```
//!
//! All multi-byte integers are unsigned LEB128 varints (7 bits per byte,
//! high bit = continuation, at most 10 bytes for a `u64`). Values that
//! cluster — addresses, fiber ids, sync keys — are **delta-encoded**
//! against the previous value of their kind and zigzag-mapped so small
//! negative deltas stay small ([`Encoder`]/[`Decoder`] carry that state,
//! and it is part of the serve spill snapshot so a restored session keeps
//! decoding mid-stream). The encoder always emits minimal-length varints,
//! so decode → re-encode reproduces the input byte-for-byte (asserted by
//! the codec proptest).
//!
//! Opcode table (payload fields after the opcode byte):
//!
//! | op | record | fields |
//! |---|---|---|
//! | 0 | string-table entry | varint id, varint len, `len` UTF-8 bytes |
//! | 1 | fiber create | svarint Δfiber, varint name |
//! | 2 | fiber switch (sync) | svarint Δfiber |
//! | 3 | fiber switch (no-sync) | svarint Δfiber |
//! | 4 | fiber destroy | svarint Δfiber |
//! | 5 | happens-before | svarint Δkey |
//! | 6 | happens-after | svarint Δkey |
//! | 7 | read range | svarint Δaddr, varint len, varint ctx |
//! | 8 | write range | svarint Δaddr, varint len, varint ctx |
//! | 9 | alloc | svarint Δaddr, varint bytes, varint kind |
//! | 10 | free | svarint Δaddr, varint bytes |
//! | 11 | request begin | varint serial |
//! | 12 | request complete | varint serial |
//! | 13 | counter bump | varint counter, varint delta |
//! | 14 | api fault | varint call, varint site |
//! | 15 | end of trace | (no fields) |
//! | 16 | schedule choice | varint kind, varint arity, varint chosen |
//!
//! The end-of-trace marker (written when a recording is sealed or a
//! transcode finishes) is what makes truncation *always* detectable:
//! without it, a stream cut exactly at a record boundary would read as a
//! complete, shorter trace. Readers reject bytes after the marker and
//! treat end-of-input without it as truncation.
//!
//! Every decode failure is a typed [`BinError`] — truncated input
//! (including *every* strict prefix of a valid trace), varint overflow,
//! unknown opcodes, bad UTF-8, oversized or trailing-garbage records —
//! never a panic. Framing errors are recoverable by feeding more bytes
//! (the push parser in [`crate::trace`] maps mid-frame
//! [`BinError::Truncated`] to "wait for the next chunk"); payload errors
//! inside a complete frame are corruption and poison the stream.

use crate::event::CusanEvent;
use std::fmt;
use tsan_rt::{FiberId, SyncKey};

/// Magic prefix of a binary (v3) trace. The trailing digit is the
/// version: readers reject any other version loudly, exactly like the
/// text format's `cusan-trace v2` magic.
pub const BIN_MAGIC: &[u8; 8] = b"cusanbt3";

/// Version-independent prefix, used to tell "other binary version" apart
/// from "not a binary trace at all" while sniffing.
pub const BIN_FAMILY: &[u8; 7] = b"cusanbt";

/// Hard cap on one record's payload length. Real records are tens of
/// bytes (the longest are string-table labels); a length field beyond
/// this is corruption, not a record we should wait for more bytes on.
pub const MAX_RECORD: u64 = 1 << 20;

/// Typed decode error for the binary trace codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// Input ended mid-varint or mid-record at byte offset `at` (relative
    /// to the scanned slice). While streaming this means "feed more
    /// bytes"; at end-of-input it means the trace is truncated.
    Truncated {
        /// Offset of the first missing byte.
        at: usize,
    },
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow {
        /// Offset where the varint started.
        at: usize,
    },
    /// Unknown record opcode.
    BadOpcode {
        /// The opcode byte.
        op: u8,
    },
    /// A string-table label was not valid UTF-8.
    BadUtf8,
    /// A record's length field exceeded [`MAX_RECORD`].
    OversizedRecord {
        /// The claimed payload length.
        len: u64,
    },
    /// A record payload had bytes left over after its last field — the
    /// length field and the opcode disagree.
    TrailingRecordBytes {
        /// Unconsumed payload bytes.
        left: usize,
    },
    /// A malformed header field (bad tiered flag, zero-length payload…).
    BadHeader(&'static str),
    /// The magic named a binary trace version this reader does not
    /// understand.
    UnsupportedVersion {
        /// The version byte found in the magic.
        got: u8,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated { at } => write!(f, "truncated at byte {at}"),
            BinError::VarintOverflow { at } => write!(f, "varint overflow at byte {at}"),
            BinError::BadOpcode { op } => write!(f, "unknown opcode {op}"),
            BinError::BadUtf8 => write!(f, "string label is not valid UTF-8"),
            BinError::OversizedRecord { len } => {
                write!(f, "record length {len} exceeds the {MAX_RECORD}-byte cap")
            }
            BinError::TrailingRecordBytes { left } => {
                write!(f, "{left} trailing bytes after the record's last field")
            }
            BinError::BadHeader(what) => write!(f, "bad header: {what}"),
            BinError::UnsupportedVersion { got } => write!(
                f,
                "unsupported binary trace version {:?}, this reader only understands \
                 `cusanbt3` (re-record or transcode the trace)",
                char::from(*got)
            ),
        }
    }
}

impl std::error::Error for BinError {}

/// Append `v` as an unsigned LEB128 varint (always minimal-length).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` zigzag-mapped as a varint (small magnitudes of either sign
/// stay small).
pub fn put_svarint(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bounds-checked cursor over a byte slice; every read is a typed
/// [`BinError`] on failure, never a panic.
#[derive(Debug, Clone)]
pub struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    /// Scan `bytes` from the front.
    pub fn new(bytes: &'a [u8]) -> Self {
        Scanner { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to consume.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(BinError::Truncated { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated {
                at: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, BinError> {
        let start = self.pos;
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(BinError::VarintOverflow { at: start });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(BinError::VarintOverflow { at: start });
            }
        }
    }

    /// One zigzag-mapped signed varint.
    pub fn svarint(&mut self) -> Result<i64, BinError> {
        Ok(unzigzag(self.varint()?))
    }
}

/// Opcodes, one byte per record.
mod op {
    pub const STR: u8 = 0;
    pub const FIBER_CREATE: u8 = 1;
    pub const FIBER_SWITCH_SYNC: u8 = 2;
    pub const FIBER_SWITCH_NOSYNC: u8 = 3;
    pub const FIBER_DESTROY: u8 = 4;
    pub const HAPPENS_BEFORE: u8 = 5;
    pub const HAPPENS_AFTER: u8 = 6;
    pub const READ_RANGE: u8 = 7;
    pub const WRITE_RANGE: u8 = 8;
    pub const ALLOC: u8 = 9;
    pub const FREE: u8 = 10;
    pub const REQUEST_BEGIN: u8 = 11;
    pub const REQUEST_COMPLETE: u8 = 12;
    pub const COUNTER_BUMP: u8 = 13;
    pub const API_FAULT: u8 = 14;
    pub const END: u8 = 15;
    pub const SCHEDULE_CHOICE: u8 = 16;
}

/// The delta-coding context shared by encoder and decoder: last address,
/// fiber id, and sync key seen. Both sides update it identically per
/// record, so the stream can be cut anywhere the frames align (the serve
/// spill snapshot serializes these three words).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaState {
    /// Last address (read/write/alloc/free ops).
    pub addr: u64,
    /// Last fiber id (create/switch/destroy ops).
    pub fiber: u64,
    /// Last sync key (happens-before/after ops).
    pub key: u64,
}

impl DeltaState {
    fn delta(last: &mut u64, v: u64) -> i64 {
        let d = v.wrapping_sub(*last) as i64;
        *last = v;
        d
    }

    fn apply(last: &mut u64, d: i64) -> u64 {
        *last = last.wrapping_add(d as u64);
        *last
    }
}

/// Encode header + records into a byte buffer. Owns the delta state; one
/// encoder per trace, fed records in stream order.
#[derive(Debug, Default)]
pub struct Encoder {
    deltas: DeltaState,
    scratch: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder (deltas all zero, like a fresh decoder).
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Write the magic and header fields.
    pub fn encode_header(buf: &mut Vec<u8>, rank: usize, tiered: bool, budget: Option<usize>) {
        buf.extend_from_slice(BIN_MAGIC);
        put_varint(buf, rank as u64);
        buf.push(u8::from(tiered));
        put_varint(buf, budget.map_or(0, |b| b as u64 + 1));
    }

    /// Frame `scratch` (the payload built by the caller) into `buf`.
    fn frame(buf: &mut Vec<u8>, scratch: &[u8]) {
        put_varint(buf, scratch.len() as u64);
        buf.extend_from_slice(scratch);
    }

    /// Append the end-of-trace marker. Must be the stream's last record;
    /// readers treat its absence at end-of-input as truncation.
    pub fn encode_end(&mut self, buf: &mut Vec<u8>) {
        self.scratch.clear();
        self.scratch.push(op::END);
        Self::frame(buf, &self.scratch);
    }

    /// Append one string-table record.
    pub fn encode_str(&mut self, buf: &mut Vec<u8>, id: u32, label: &str) {
        self.scratch.clear();
        self.scratch.push(op::STR);
        put_varint(&mut self.scratch, u64::from(id));
        put_varint(&mut self.scratch, label.len() as u64);
        self.scratch.extend_from_slice(label.as_bytes());
        Self::frame(buf, &self.scratch);
    }

    /// Append one event record, advancing the delta state.
    pub fn encode_event(&mut self, buf: &mut Vec<u8>, ev: &CusanEvent) {
        let d = &mut self.deltas;
        let s = &mut self.scratch;
        s.clear();
        match *ev {
            CusanEvent::FiberCreate { fiber, name } => {
                s.push(op::FIBER_CREATE);
                put_svarint(s, DeltaState::delta(&mut d.fiber, fiber.index() as u64));
                put_varint(s, u64::from(name.0));
            }
            CusanEvent::FiberSwitch { fiber, sync } => {
                s.push(if sync {
                    op::FIBER_SWITCH_SYNC
                } else {
                    op::FIBER_SWITCH_NOSYNC
                });
                put_svarint(s, DeltaState::delta(&mut d.fiber, fiber.index() as u64));
            }
            CusanEvent::FiberDestroy { fiber } => {
                s.push(op::FIBER_DESTROY);
                put_svarint(s, DeltaState::delta(&mut d.fiber, fiber.index() as u64));
            }
            CusanEvent::HappensBefore { key } => {
                s.push(op::HAPPENS_BEFORE);
                put_svarint(s, DeltaState::delta(&mut d.key, key.0));
            }
            CusanEvent::HappensAfter { key } => {
                s.push(op::HAPPENS_AFTER);
                put_svarint(s, DeltaState::delta(&mut d.key, key.0));
            }
            CusanEvent::ReadRange { addr, len, ctx } => {
                s.push(op::READ_RANGE);
                put_svarint(s, DeltaState::delta(&mut d.addr, addr));
                put_varint(s, len);
                put_varint(s, u64::from(ctx.0));
            }
            CusanEvent::WriteRange { addr, len, ctx } => {
                s.push(op::WRITE_RANGE);
                put_svarint(s, DeltaState::delta(&mut d.addr, addr));
                put_varint(s, len);
                put_varint(s, u64::from(ctx.0));
            }
            CusanEvent::Alloc { addr, bytes, kind } => {
                s.push(op::ALLOC);
                put_svarint(s, DeltaState::delta(&mut d.addr, addr));
                put_varint(s, bytes);
                put_varint(s, u64::from(kind.0));
            }
            CusanEvent::Free { addr, bytes } => {
                s.push(op::FREE);
                put_svarint(s, DeltaState::delta(&mut d.addr, addr));
                put_varint(s, bytes);
            }
            CusanEvent::RequestBegin { serial } => {
                s.push(op::REQUEST_BEGIN);
                put_varint(s, serial);
            }
            CusanEvent::RequestComplete { serial } => {
                s.push(op::REQUEST_COMPLETE);
                put_varint(s, serial);
            }
            CusanEvent::CounterBump { counter, delta } => {
                s.push(op::COUNTER_BUMP);
                put_varint(s, u64::from(counter.0));
                put_varint(s, delta);
            }
            CusanEvent::ApiFault { call, site } => {
                s.push(op::API_FAULT);
                put_varint(s, u64::from(call.0));
                put_varint(s, site);
            }
            CusanEvent::ScheduleChoice {
                kind,
                arity,
                chosen,
            } => {
                s.push(op::SCHEDULE_CHOICE);
                put_varint(s, u64::from(kind.0));
                put_varint(s, arity);
                put_varint(s, chosen);
            }
        }
        Self::frame(buf, &self.scratch);
    }
}

/// One decoded binary record, before string-table validation (the push
/// parser in [`crate::trace`] interns labels and checks id density, the
/// same rules the text parser enforces).
#[derive(Debug, Clone, PartialEq)]
pub enum BinRecord {
    /// A string-table entry.
    Str {
        /// The entry's declared dense id.
        id: u32,
        /// The label bytes, already UTF-8-validated.
        label: String,
    },
    /// An event record.
    Event(CusanEvent),
    /// The end-of-trace marker — nothing may follow it.
    End,
}

/// Decode the header fields after a verified [`BIN_MAGIC`]. Returns
/// `Ok(None)` when `bytes` ends before the header is complete (feed more
/// bytes), `Ok(Some((consumed, rank, tiered, budget)))` on success.
#[allow(clippy::type_complexity)]
pub fn decode_header(
    bytes: &[u8],
) -> Result<Option<(usize, usize, bool, Option<usize>)>, BinError> {
    let mut s = Scanner::new(bytes);
    let magic = match s.take(BIN_MAGIC.len()) {
        Ok(m) => m,
        Err(BinError::Truncated { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    if magic[..BIN_FAMILY.len()] != BIN_FAMILY[..] {
        return Err(BinError::BadHeader("magic mismatch"));
    }
    if magic[BIN_FAMILY.len()] != BIN_MAGIC[BIN_FAMILY.len()] {
        return Err(BinError::UnsupportedVersion {
            got: magic[BIN_FAMILY.len()],
        });
    }
    let rank = match s.varint() {
        Ok(v) => v,
        Err(BinError::Truncated { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    let tiered = match s.u8() {
        Ok(0) => false,
        Ok(1) => true,
        Ok(_) => return Err(BinError::BadHeader("tiered flag is not 0 or 1")),
        Err(BinError::Truncated { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    let budget = match s.varint() {
        Ok(0) => None,
        Ok(b) => Some((b - 1) as usize),
        Err(BinError::Truncated { .. }) => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(Some((s.pos(), rank as usize, tiered, budget)))
}

/// Decode length-delimited records, mirroring [`Encoder`]'s delta state.
#[derive(Debug, Default)]
pub struct Decoder {
    deltas: DeltaState,
}

impl Decoder {
    /// Fresh decoder (deltas all zero).
    pub fn new() -> Self {
        Decoder::default()
    }

    /// The current delta state (for the serve spill snapshot).
    pub fn state(&self) -> DeltaState {
        self.deltas
    }

    /// Rebuild a decoder mid-stream from snapshotted delta state.
    pub fn from_state(deltas: DeltaState) -> Self {
        Decoder { deltas }
    }

    /// Try to decode one record from the front of `bytes`.
    ///
    /// `Ok(None)` means the frame is incomplete — feed more bytes and
    /// retry (the delta state is untouched). `Ok(Some((consumed, rec)))`
    /// consumed `consumed` bytes. `Err` means the stream is corrupt: a
    /// complete frame failed to decode, or the length field itself is
    /// invalid.
    pub fn decode_record(&mut self, bytes: &[u8]) -> Result<Option<(usize, BinRecord)>, BinError> {
        let mut s = Scanner::new(bytes);
        let len = match s.varint() {
            Ok(l) => l,
            Err(BinError::Truncated { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        if len == 0 {
            return Err(BinError::BadHeader("zero-length record"));
        }
        if len > MAX_RECORD {
            return Err(BinError::OversizedRecord { len });
        }
        if (s.remaining() as u64) < len {
            return Ok(None);
        }
        let payload = s.take(len as usize).expect("length just checked");
        let rec = self.decode_payload(payload)?;
        Ok(Some((s.pos(), rec)))
    }

    /// Decode one complete payload. Any error here — including running
    /// out of payload bytes — is corruption: the frame was complete.
    fn decode_payload(&mut self, payload: &[u8]) -> Result<BinRecord, BinError> {
        let d = &mut self.deltas;
        let mut s = Scanner::new(payload);
        let opcode = s.u8()?;
        let rec = match opcode {
            op::STR => {
                let id = s.varint()?;
                let len = s.varint()? as usize;
                let label = std::str::from_utf8(s.take(len)?).map_err(|_| BinError::BadUtf8)?;
                BinRecord::Str {
                    id: id as u32,
                    label: label.to_string(),
                }
            }
            op::FIBER_CREATE => {
                let fiber = DeltaState::apply(&mut d.fiber, s.svarint()?);
                let name = s.varint()?;
                BinRecord::Event(CusanEvent::FiberCreate {
                    fiber: FiberId::from_index(fiber as usize),
                    name: crate::event::StrId(name as u32),
                })
            }
            op::FIBER_SWITCH_SYNC | op::FIBER_SWITCH_NOSYNC => {
                let fiber = DeltaState::apply(&mut d.fiber, s.svarint()?);
                BinRecord::Event(CusanEvent::FiberSwitch {
                    fiber: FiberId::from_index(fiber as usize),
                    sync: opcode == op::FIBER_SWITCH_SYNC,
                })
            }
            op::FIBER_DESTROY => {
                let fiber = DeltaState::apply(&mut d.fiber, s.svarint()?);
                BinRecord::Event(CusanEvent::FiberDestroy {
                    fiber: FiberId::from_index(fiber as usize),
                })
            }
            op::HAPPENS_BEFORE | op::HAPPENS_AFTER => {
                let key = SyncKey(DeltaState::apply(&mut d.key, s.svarint()?));
                BinRecord::Event(if opcode == op::HAPPENS_BEFORE {
                    CusanEvent::HappensBefore { key }
                } else {
                    CusanEvent::HappensAfter { key }
                })
            }
            op::READ_RANGE | op::WRITE_RANGE => {
                let addr = DeltaState::apply(&mut d.addr, s.svarint()?);
                let len = s.varint()?;
                let ctx = crate::event::StrId(s.varint()? as u32);
                BinRecord::Event(if opcode == op::READ_RANGE {
                    CusanEvent::ReadRange { addr, len, ctx }
                } else {
                    CusanEvent::WriteRange { addr, len, ctx }
                })
            }
            op::ALLOC => {
                let addr = DeltaState::apply(&mut d.addr, s.svarint()?);
                let bytes = s.varint()?;
                let kind = crate::event::StrId(s.varint()? as u32);
                BinRecord::Event(CusanEvent::Alloc { addr, bytes, kind })
            }
            op::FREE => {
                let addr = DeltaState::apply(&mut d.addr, s.svarint()?);
                let bytes = s.varint()?;
                BinRecord::Event(CusanEvent::Free { addr, bytes })
            }
            op::REQUEST_BEGIN => BinRecord::Event(CusanEvent::RequestBegin {
                serial: s.varint()?,
            }),
            op::REQUEST_COMPLETE => BinRecord::Event(CusanEvent::RequestComplete {
                serial: s.varint()?,
            }),
            op::COUNTER_BUMP => {
                let counter = crate::event::StrId(s.varint()? as u32);
                let delta = s.varint()?;
                BinRecord::Event(CusanEvent::CounterBump { counter, delta })
            }
            op::API_FAULT => {
                let call = crate::event::StrId(s.varint()? as u32);
                let site = s.varint()?;
                BinRecord::Event(CusanEvent::ApiFault { call, site })
            }
            op::SCHEDULE_CHOICE => {
                let kind = crate::event::StrId(s.varint()? as u32);
                let arity = s.varint()?;
                let chosen = s.varint()?;
                BinRecord::Event(CusanEvent::ScheduleChoice {
                    kind,
                    arity,
                    chosen,
                })
            }
            op::END => BinRecord::End,
            other => return Err(BinError::BadOpcode { op: other }),
        };
        if s.remaining() != 0 {
            return Err(BinError::TrailingRecordBytes {
                left: s.remaining(),
            });
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StrId;

    #[test]
    fn varint_roundtrip_and_minimality() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = Scanner::new(&buf);
            assert_eq!(s.varint().unwrap(), v);
            assert_eq!(s.remaining(), 0);
            // Minimal length: re-encoding the decoded value is identical.
            let mut again = Vec::new();
            put_varint(&mut again, v);
            assert_eq!(buf, again);
        }
    }

    #[test]
    fn svarint_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_svarint(&mut buf, v);
            assert_eq!(Scanner::new(&buf).svarint().unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_is_typed() {
        // 11 continuation bytes: more than any u64 needs.
        let buf = [0x80u8; 11];
        assert_eq!(
            Scanner::new(&buf).varint(),
            Err(BinError::VarintOverflow { at: 0 })
        );
        // 10 bytes but with bits past 2^64.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(
            Scanner::new(&buf).varint(),
            Err(BinError::VarintOverflow { at: 0 })
        );
        // u64::MAX itself decodes fine.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(Scanner::new(&buf).varint().unwrap(), u64::MAX);
    }

    #[test]
    fn truncated_varint_is_typed() {
        let buf = [0x80u8, 0x80];
        assert_eq!(
            Scanner::new(&buf).varint(),
            Err(BinError::Truncated { at: 2 })
        );
    }

    #[test]
    fn event_roundtrip_with_deltas() {
        let events = [
            CusanEvent::ReadRange {
                addr: 0x7f00_0000_1000,
                len: 4096,
                ctx: StrId(3),
            },
            CusanEvent::WriteRange {
                addr: 0x7f00_0000_0800, // negative delta
                len: 64,
                ctx: StrId(4),
            },
            CusanEvent::HappensBefore {
                key: SyncKey(0x0100_0000_0000),
            },
            CusanEvent::HappensAfter {
                key: SyncKey(0x0100_0000_0000), // delta 0 → 1 byte
            },
        ];
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for ev in &events {
            enc.encode_event(&mut buf, ev);
        }
        let mut dec = Decoder::new();
        let mut rest = &buf[..];
        for ev in &events {
            let (n, rec) = dec.decode_record(rest).unwrap().expect("complete frame");
            assert_eq!(rec, BinRecord::Event(*ev));
            rest = &rest[n..];
        }
        assert!(rest.is_empty());
        // A same-key happens-after is a 3-byte record: len, op, delta 0.
        let mut probe = Vec::new();
        let mut enc2 = Encoder::new();
        enc2.encode_event(&mut probe, &CusanEvent::HappensBefore { key: SyncKey(500) });
        let before = probe.len();
        enc2.encode_event(&mut probe, &CusanEvent::HappensAfter { key: SyncKey(500) });
        assert_eq!(probe.len() - before, 3);
    }

    #[test]
    fn incomplete_frames_ask_for_more_without_state_damage() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        enc.encode_event(
            &mut buf,
            &CusanEvent::ReadRange {
                addr: 0xdead_beef,
                len: 17,
                ctx: StrId(0),
            },
        );
        let mut dec = Decoder::new();
        for cut in 0..buf.len() {
            assert_eq!(
                dec.decode_record(&buf[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
            assert_eq!(
                dec.state(),
                DeltaState::default(),
                "no state change on retry"
            );
        }
        let (n, rec) = dec.decode_record(&buf).unwrap().unwrap();
        assert_eq!(n, buf.len());
        assert!(matches!(
            rec,
            BinRecord::Event(CusanEvent::ReadRange {
                addr: 0xdead_beef,
                ..
            })
        ));
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        // Unknown opcode in a complete frame.
        let buf = [1u8, 99];
        assert_eq!(
            Decoder::new().decode_record(&buf),
            Err(BinError::BadOpcode { op: 99 })
        );
        // Zero-length record.
        let buf = [0u8];
        assert!(matches!(
            Decoder::new().decode_record(&buf),
            Err(BinError::BadHeader(_))
        ));
        // Oversized length field.
        let mut buf = Vec::new();
        put_varint(&mut buf, MAX_RECORD + 1);
        assert_eq!(
            Decoder::new().decode_record(&buf),
            Err(BinError::OversizedRecord {
                len: MAX_RECORD + 1
            })
        );
        // Trailing garbage inside a complete frame.
        let buf = [3u8, op::REQUEST_BEGIN, 0, 0xaa];
        assert_eq!(
            Decoder::new().decode_record(&buf),
            Err(BinError::TrailingRecordBytes { left: 1 })
        );
        // Payload shorter than its fields claim (complete frame, inner
        // truncation = corruption).
        let buf = [1u8, op::REQUEST_BEGIN];
        assert!(matches!(
            Decoder::new().decode_record(&buf),
            Err(BinError::Truncated { .. })
        ));
    }

    #[test]
    fn header_roundtrip_and_version_gate() {
        let mut buf = Vec::new();
        Encoder::encode_header(&mut buf, 7, true, Some(42));
        let (n, rank, tiered, budget) = decode_header(&buf).unwrap().unwrap();
        assert_eq!((n, rank, tiered, budget), (buf.len(), 7, true, Some(42)));
        let mut buf = Vec::new();
        Encoder::encode_header(&mut buf, 0, false, None);
        let (_, rank, tiered, budget) = decode_header(&buf).unwrap().unwrap();
        assert_eq!((rank, tiered, budget), (0, false, None));
        // Every header prefix asks for more bytes instead of erroring.
        for cut in 0..buf.len() {
            assert_eq!(decode_header(&buf[..cut]).unwrap(), None);
        }
        // A future version fails loudly.
        let mut v4 = buf.clone();
        v4[7] = b'4';
        assert_eq!(
            decode_header(&v4),
            Err(BinError::UnsupportedVersion { got: b'4' })
        );
    }
}
