//! Check sessions: the per-run detector state as a first-class object.
//!
//! A [`CheckSession`] bundles everything one checked execution needs on
//! the *consumer* side of the event pipeline — the [`TsanRuntime`], the
//! mirror [`CtxInterner`] that resolves event string ids, the
//! [`CheckerSink`] apply path, and the per-session [`EventCounters`] —
//! independent of any particular event producer. Three producers drive
//! sessions today:
//!
//! - **Live instrumentation** — [`crate::ToolCtx`] owns one session per
//!   rank (inline in sync mode, behind the [`crate::CheckerPool`] in
//!   async mode) and feeds it the events its CUDA/MPI layers emit.
//! - **Offline replay** — [`crate::trace::replay`] builds a session from
//!   a trace header and streams the recorded events through it.
//! - **The serve path** — `cusan-serve` multiplexes thousands of
//!   sessions over one pool, one per uploaded trace shard stream.
//!
//! All three share [`CheckSession::apply`], which is what makes replayed
//! and served results bit-for-bit identical to live runs.

use std::sync::Arc;

use crate::ctx::shadow_arena_env;
use crate::event::{CheckerSink, CtxInterner, CusanEvent, EventCounters, StrId};
use tsan_rt::{RaceReport, TsanRuntime, TsanStats};

/// Construction parameters for a [`CheckSession`] (mirrors the
/// detector-relevant subset of [`crate::ToolConfig`] plus the trace
/// header fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOptions {
    /// MPI rank (or client-chosen id) the session checks; only used for
    /// naming the host fiber, so reports match live runs.
    pub rank: usize,
    /// Tiered shadow memory (page summaries + fast path).
    pub shadow_tiered: bool,
    /// Recycle shadow pages through the arena allocator.
    pub shadow_arena: bool,
    /// Per-session shadow page budget (best-effort drops beyond it).
    pub shadow_page_budget: Option<usize>,
}

impl SessionOptions {
    /// Defaults matching a live `ToolCtx` run with a vanilla config:
    /// tiered shadow, arena per the frozen `CUSAN_SHADOW_ARENA` knob, no
    /// budget.
    pub fn new(rank: usize) -> Self {
        SessionOptions {
            rank,
            shadow_tiered: true,
            shadow_arena: shadow_arena_env().unwrap_or(true),
            shadow_page_budget: None,
        }
    }

    /// Options recorded in a trace header. Tiering and budget are part
    /// of the recorded configuration (they change detection results);
    /// the arena is a pure allocation strategy and so follows the
    /// replaying process's environment, exactly like [`crate::replay`]
    /// always has.
    pub fn for_trace(rank: usize, tiered: bool, budget: Option<usize>) -> Self {
        SessionOptions {
            rank,
            shadow_tiered: tiered,
            shadow_arena: shadow_arena_env().unwrap_or(true),
            shadow_page_budget: budget,
        }
    }
}

/// A self-contained snapshot of everything a session detected, cloned
/// out of the runtime so it survives the session (and in the serve path,
/// survives shadow eviction — summaries are always taken *before* a
/// session's shadow pages may be reclaimed).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Rank the session checked.
    pub rank: usize,
    /// Deduplicated race reports, in detection order.
    pub reports: Vec<RaceReport>,
    /// Races counted pre-dedup ([`TsanRuntime::race_count`]).
    pub race_count: u64,
    /// Detector-side Table-I counters.
    pub stats: TsanStats,
    /// Event-stream-side counters.
    pub counters: EventCounters,
}

/// Detector runtime + mirror interner + apply path + per-session
/// counters, as one ownable unit (see the module docs).
pub struct CheckSession {
    rank: usize,
    strings: CtxInterner,
    checker: CheckerSink,
    counters: EventCounters,
    rt: TsanRuntime,
}

impl CheckSession {
    /// Fresh session with its own runtime built from `opts`.
    pub fn new(opts: &SessionOptions) -> Self {
        let mut rt = TsanRuntime::with_options(
            &format!("host (rank {})", opts.rank),
            opts.shadow_tiered,
            opts.shadow_arena,
            true,
        );
        rt.set_shadow_page_budget(opts.shadow_page_budget);
        Self::from_runtime(opts.rank, rt)
    }

    /// Wrap an already-configured runtime (the `ToolCtx` path, which
    /// resolves knobs itself before constructing the runtime).
    pub fn from_runtime(rank: usize, rt: TsanRuntime) -> Self {
        CheckSession {
            rank,
            strings: CtxInterner::new(),
            checker: CheckerSink::new(),
            counters: EventCounters::default(),
            rt,
        }
    }

    /// Rank (or serve-client id) this session checks.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Intern a label into the session's mirror table. Producers must
    /// forward every fresh label *before* the first event referencing
    /// it, in interning order — ids are dense, so order is identity.
    pub fn intern(&mut self, label: &str) -> StrId {
        self.strings.intern(label)
    }

    /// [`CheckSession::intern`] for a label whose bytes are already
    /// shared (serve's cross-session label table).
    pub fn intern_shared(&mut self, label: &Arc<str>) -> StrId {
        self.strings.intern_shared(label)
    }

    /// Apply one event: detector first, then the session counters. This
    /// is the one apply path shared by live sync, the async pool, trace
    /// replay, and serve.
    pub fn apply(&mut self, ev: &CusanEvent) {
        self.checker.apply(ev, &self.strings, &mut self.rt);
        self.counters.observe(ev, &self.strings);
    }

    /// The session's mirror string table.
    pub fn strings(&self) -> &CtxInterner {
        &self.strings
    }

    /// Event-stream counters folded so far.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// The detector runtime.
    pub fn runtime(&self) -> &TsanRuntime {
        &self.rt
    }

    /// Mutable access to the detector runtime (suppressions, budget,
    /// eviction hooks).
    pub fn runtime_mut(&mut self) -> &mut TsanRuntime {
        &mut self.rt
    }

    /// Resident shadow pages (the serve path's global-budget unit).
    pub fn shadow_pages(&self) -> usize {
        self.rt.shadow_pages()
    }

    /// Evict every shadow page, returning slab memory to the arena free
    /// list (see [`TsanRuntime::evict_shadow_pages`]). Sound only once
    /// the session is finished — eviction forgets access history, so a
    /// later access would miss races against pre-eviction accesses.
    pub fn evict_shadow(&mut self) -> usize {
        self.rt.evict_shadow_pages()
    }

    /// Snapshot reports/stats/counters (see [`SessionSummary`]).
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            rank: self.rank,
            reports: self.rt.reports().to_vec(),
            race_count: self.rt.race_count(),
            stats: self.rt.stats(),
            counters: self.counters.clone(),
        }
    }

    /// Consume the session into its summary (moves the reports out
    /// instead of cloning).
    pub fn into_summary(mut self) -> SessionSummary {
        SessionSummary {
            rank: self.rank,
            race_count: self.rt.race_count(),
            stats: self.rt.stats(),
            reports: self.rt.take_reports(),
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsan_rt::FiberId;

    fn race_session() -> CheckSession {
        // The Fig. 6B pattern through the session apply path.
        let mut s = CheckSession::new(&SessionOptions::new(0));
        let name = s.intern("cuda stream 0");
        let cw = s.intern("kernel write");
        let cr = s.intern("host read");
        let fiber = s.runtime().peek_next_fiber();
        for ev in [
            CusanEvent::FiberCreate { fiber, name },
            CusanEvent::FiberSwitch { fiber, sync: true },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx: cw,
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::ReadRange {
                addr: 0x1000,
                len: 64,
                ctx: cr,
            },
        ] {
            s.apply(&ev);
        }
        s
    }

    #[test]
    fn session_detects_and_summarizes() {
        let s = race_session();
        let sum = s.summary();
        assert_eq!(sum.rank, 0);
        assert_eq!(sum.race_count, 1);
        assert_eq!(sum.reports.len(), 1);
        assert_eq!(sum.reports[0].previous.ctx, "kernel write");
        assert_eq!(sum.counters.fiber_switches, 2);
        assert_eq!(sum.counters.write_bytes, 64);
        // into_summary agrees with the cloning snapshot.
        assert_eq!(s.into_summary(), sum);
    }

    #[test]
    fn eviction_after_summary_preserves_the_race_set() {
        let mut s = race_session();
        let before = s.summary();
        assert!(s.shadow_pages() > 0);
        let evicted = s.evict_shadow();
        assert!(evicted > 0);
        assert_eq!(s.shadow_pages(), 0);
        // Reports and race counts are unaffected by shadow eviction;
        // only allocation stats move.
        let after = s.summary();
        assert_eq!(after.reports, before.reports);
        assert_eq!(after.race_count, before.race_count);
        assert_eq!(after.counters, before.counters);
        assert!(after.stats.arena_pages_evicted >= before.stats.arena_pages_evicted);
    }

    #[test]
    fn host_fiber_is_named_after_the_rank() {
        let s = CheckSession::new(&SessionOptions::new(3));
        assert_eq!(s.runtime().fiber_name(FiberId::HOST), "host (rank 3)");
    }
}
