//! Check sessions: the per-run detector state as a first-class object.
//!
//! A [`CheckSession`] bundles everything one checked execution needs on
//! the *consumer* side of the event pipeline — the [`TsanRuntime`], the
//! mirror [`CtxInterner`] that resolves event string ids, the
//! [`CheckerSink`] apply path, and the per-session [`EventCounters`] —
//! independent of any particular event producer. Three producers drive
//! sessions today:
//!
//! - **Live instrumentation** — [`crate::ToolCtx`] owns one session per
//!   rank (inline in sync mode, behind the [`crate::CheckerPool`] in
//!   async mode) and feeds it the events its CUDA/MPI layers emit.
//! - **Offline replay** — [`crate::trace::replay`] builds a session from
//!   a trace header and streams the recorded events through it.
//! - **The serve path** — `cusan-serve` multiplexes thousands of
//!   sessions over one pool, one per uploaded trace shard stream.
//!
//! All three share [`CheckSession::apply`], which is what makes replayed
//! and served results bit-for-bit identical to live runs.

use std::sync::Arc;

use crate::ctx::shadow_arena_env;
use crate::event::{CheckerSink, CtxInterner, CusanEvent, EventCounters, StrId};
use tsan_rt::{
    CtxId, RaceReport, SnapshotError, SnapshotReader, SnapshotWriter, TsanRuntime, TsanStats,
};

/// Magic prefix of a serialized [`CheckSession`] (distinct from the
/// runtime-level `cusansnp` so the two blob kinds cannot be confused).
pub const SESSION_SNAPSHOT_MAGIC: &[u8; 8] = b"cusanses";

/// Version of the session snapshot layout.
pub const SESSION_SNAPSHOT_VERSION: u32 = 1;

/// Construction parameters for a [`CheckSession`] (mirrors the
/// detector-relevant subset of [`crate::ToolConfig`] plus the trace
/// header fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOptions {
    /// MPI rank (or client-chosen id) the session checks; only used for
    /// naming the host fiber, so reports match live runs.
    pub rank: usize,
    /// Tiered shadow memory (page summaries + fast path).
    pub shadow_tiered: bool,
    /// Recycle shadow pages through the arena allocator.
    pub shadow_arena: bool,
    /// Per-session shadow page budget (best-effort drops beyond it).
    pub shadow_page_budget: Option<usize>,
}

impl SessionOptions {
    /// Defaults matching a live `ToolCtx` run with a vanilla config:
    /// tiered shadow, arena per the frozen `CUSAN_SHADOW_ARENA` knob, no
    /// budget.
    pub fn new(rank: usize) -> Self {
        SessionOptions {
            rank,
            shadow_tiered: true,
            shadow_arena: shadow_arena_env().unwrap_or(true),
            shadow_page_budget: None,
        }
    }

    /// Options recorded in a trace header. Tiering and budget are part
    /// of the recorded configuration (they change detection results);
    /// the arena is a pure allocation strategy and so follows the
    /// replaying process's environment, exactly like [`crate::replay`]
    /// always has.
    pub fn for_trace(rank: usize, tiered: bool, budget: Option<usize>) -> Self {
        SessionOptions {
            rank,
            shadow_tiered: tiered,
            shadow_arena: shadow_arena_env().unwrap_or(true),
            shadow_page_budget: budget,
        }
    }
}

/// A self-contained snapshot of everything a session detected, cloned
/// out of the runtime so it survives the session (and in the serve path,
/// survives shadow eviction — summaries are always taken *before* a
/// session's shadow pages may be reclaimed).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Rank the session checked.
    pub rank: usize,
    /// Deduplicated race reports, in detection order.
    pub reports: Vec<RaceReport>,
    /// Races counted pre-dedup ([`TsanRuntime::race_count`]).
    pub race_count: u64,
    /// Detector-side Table-I counters.
    pub stats: TsanStats,
    /// Event-stream-side counters.
    pub counters: EventCounters,
}

/// Detector runtime + mirror interner + apply path + per-session
/// counters, as one ownable unit (see the module docs).
pub struct CheckSession {
    rank: usize,
    strings: CtxInterner,
    checker: CheckerSink,
    counters: EventCounters,
    rt: TsanRuntime,
}

impl CheckSession {
    /// Fresh session with its own runtime built from `opts`.
    pub fn new(opts: &SessionOptions) -> Self {
        let mut rt = TsanRuntime::with_options(
            &format!("host (rank {})", opts.rank),
            opts.shadow_tiered,
            opts.shadow_arena,
            true,
        );
        rt.set_shadow_page_budget(opts.shadow_page_budget);
        Self::from_runtime(opts.rank, rt)
    }

    /// Wrap an already-configured runtime (the `ToolCtx` path, which
    /// resolves knobs itself before constructing the runtime).
    pub fn from_runtime(rank: usize, rt: TsanRuntime) -> Self {
        CheckSession {
            rank,
            strings: CtxInterner::new(),
            checker: CheckerSink::new(),
            counters: EventCounters::default(),
            rt,
        }
    }

    /// Rank (or serve-client id) this session checks.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Intern a label into the session's mirror table. Producers must
    /// forward every fresh label *before* the first event referencing
    /// it, in interning order — ids are dense, so order is identity.
    pub fn intern(&mut self, label: &str) -> StrId {
        self.strings.intern(label)
    }

    /// [`CheckSession::intern`] for a label whose bytes are already
    /// shared (serve's cross-session label table).
    pub fn intern_shared(&mut self, label: &Arc<str>) -> StrId {
        self.strings.intern_shared(label)
    }

    /// Apply one event: detector first, then the session counters. This
    /// is the one apply path shared by live sync, the async pool, trace
    /// replay, and serve.
    pub fn apply(&mut self, ev: &CusanEvent) {
        self.checker.apply(ev, &self.strings, &mut self.rt);
        self.counters.observe(ev, &self.strings);
    }

    /// The session's mirror string table.
    pub fn strings(&self) -> &CtxInterner {
        &self.strings
    }

    /// Event-stream counters folded so far.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// The detector runtime.
    pub fn runtime(&self) -> &TsanRuntime {
        &self.rt
    }

    /// Mutable access to the detector runtime (suppressions, budget,
    /// eviction hooks).
    pub fn runtime_mut(&mut self) -> &mut TsanRuntime {
        &mut self.rt
    }

    /// Resident shadow pages (the serve path's global-budget unit).
    pub fn shadow_pages(&self) -> usize {
        self.rt.shadow_pages()
    }

    /// Evict every shadow page, returning slab memory to the arena free
    /// list (see [`TsanRuntime::evict_shadow_pages`]). Sound only once
    /// the session is finished — eviction forgets access history, so a
    /// later access would miss races against pre-eviction accesses.
    pub fn evict_shadow(&mut self) -> usize {
        self.rt.evict_shadow_pages()
    }

    /// Snapshot reports/stats/counters (see [`SessionSummary`]).
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            rank: self.rank,
            reports: self.rt.reports().to_vec(),
            race_count: self.rt.race_count(),
            stats: self.rt.stats(),
            counters: self.counters.clone(),
        }
    }

    /// Serialize the complete session — interner, checker context map,
    /// event counters, and the full detector runtime — into a
    /// self-describing blob. The encoding is *canonical*: two sessions
    /// with identical observable state produce identical bytes, and
    /// `snapshot_bytes ∘ restore_bytes` is the identity on blobs. This
    /// is what lets the serve path spill an **unfinished** session to
    /// disk under memory pressure and later resume feeding it events
    /// with bit-for-bit identical results (unlike
    /// [`CheckSession::evict_shadow`], which forgets access history and
    /// is only sound for finished sessions).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_raw(SESSION_SNAPSHOT_MAGIC);
        w.put_u32(SESSION_SNAPSHOT_VERSION);
        w.put_u64(self.rank as u64);
        // Mirror interner, in id order (ids are dense: order is identity).
        w.put_len(self.strings.len());
        for i in 0..self.strings.len() {
            w.put_str(self.strings.label(StrId(i as u32)));
        }
        // Checker StrId → CtxId map.
        let ctx_map = self.checker.ctx_map();
        w.put_len(ctx_map.len());
        for entry in ctx_map {
            match entry {
                Some(ctx) => {
                    w.put_bool(true);
                    w.put_u32(ctx.0);
                }
                None => w.put_bool(false),
            }
        }
        // Event-stream counters: the 15 scalar fields in declared order,
        // then the named rows (BTreeMap iteration is already sorted).
        let c = &self.counters;
        for v in [
            c.fiber_creates,
            c.fiber_destroys,
            c.fiber_switches,
            c.sync_switches,
            c.happens_before,
            c.happens_after,
            c.read_range_calls,
            c.write_range_calls,
            c.read_bytes,
            c.write_bytes,
            c.allocs,
            c.frees,
            c.requests_begun,
            c.requests_completed,
            c.api_faults,
        ] {
            w.put_u64(v);
        }
        w.put_len(c.named.len());
        for (name, total) in &c.named {
            w.put_str(name);
            w.put_u64(*total);
        }
        // The detector runtime, inline (its own sections are canonical).
        self.rt.write_snapshot(&mut w);
        w.into_bytes()
    }

    /// Rebuild a session from [`CheckSession::snapshot_bytes`] output.
    pub fn restore_bytes(bytes: &[u8]) -> Result<CheckSession, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        if r.get_raw(SESSION_SNAPSHOT_MAGIC.len())? != SESSION_SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != SESSION_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let rank = r.get_u64()? as usize;
        let n_labels = r.get_len()?;
        let mut strings = CtxInterner::new();
        for i in 0..n_labels {
            let label = r.get_str()?;
            let id = strings.intern(&label);
            if id != StrId(i as u32) {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate interner label {label:?}"
                )));
            }
        }
        let n_map = r.get_len()?;
        if n_map > n_labels {
            return Err(SnapshotError::Corrupt(format!(
                "ctx map covers {n_map} ids but only {n_labels} labels exist"
            )));
        }
        let mut ctx_map = Vec::with_capacity(n_map);
        for _ in 0..n_map {
            ctx_map.push(if r.get_bool()? {
                Some(CtxId(r.get_u32()?))
            } else {
                None
            });
        }
        let mut counters = EventCounters::default();
        {
            let c = &mut counters;
            for field in [
                &mut c.fiber_creates,
                &mut c.fiber_destroys,
                &mut c.fiber_switches,
                &mut c.sync_switches,
                &mut c.happens_before,
                &mut c.happens_after,
                &mut c.read_range_calls,
                &mut c.write_range_calls,
                &mut c.read_bytes,
                &mut c.write_bytes,
                &mut c.allocs,
                &mut c.frees,
                &mut c.requests_begun,
                &mut c.requests_completed,
                &mut c.api_faults,
            ] {
                *field = r.get_u64()?;
            }
            let n_named = r.get_len()?;
            let mut last: Option<String> = None;
            for _ in 0..n_named {
                let name = r.get_str()?;
                if last.as_deref() >= Some(name.as_str()) {
                    return Err(SnapshotError::Corrupt("named counters out of order".into()));
                }
                let total = r.get_u64()?;
                c.named.insert(name.clone(), total);
                last = Some(name);
            }
        }
        let rt = TsanRuntime::read_snapshot(&mut r)?;
        r.expect_end()?;
        for entry in ctx_map.iter().flatten() {
            if rt.ctx_label(*entry) == "<invalid>" {
                return Err(SnapshotError::Corrupt(format!(
                    "ctx map references unknown runtime ctx {}",
                    entry.0
                )));
            }
        }
        Ok(CheckSession {
            rank,
            strings,
            checker: CheckerSink::from_ctx_map(ctx_map),
            counters,
            rt,
        })
    }

    /// Consume the session into its summary (moves the reports out
    /// instead of cloning).
    pub fn into_summary(mut self) -> SessionSummary {
        SessionSummary {
            rank: self.rank,
            race_count: self.rt.race_count(),
            stats: self.rt.stats(),
            reports: self.rt.take_reports(),
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsan_rt::FiberId;

    fn race_session() -> CheckSession {
        // The Fig. 6B pattern through the session apply path.
        let mut s = CheckSession::new(&SessionOptions::new(0));
        let name = s.intern("cuda stream 0");
        let cw = s.intern("kernel write");
        let cr = s.intern("host read");
        let fiber = s.runtime().peek_next_fiber();
        for ev in [
            CusanEvent::FiberCreate { fiber, name },
            CusanEvent::FiberSwitch { fiber, sync: true },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx: cw,
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::ReadRange {
                addr: 0x1000,
                len: 64,
                ctx: cr,
            },
        ] {
            s.apply(&ev);
        }
        s
    }

    #[test]
    fn session_detects_and_summarizes() {
        let s = race_session();
        let sum = s.summary();
        assert_eq!(sum.rank, 0);
        assert_eq!(sum.race_count, 1);
        assert_eq!(sum.reports.len(), 1);
        assert_eq!(sum.reports[0].previous.ctx, "kernel write");
        assert_eq!(sum.counters.fiber_switches, 2);
        assert_eq!(sum.counters.write_bytes, 64);
        // into_summary agrees with the cloning snapshot.
        assert_eq!(s.into_summary(), sum);
    }

    #[test]
    fn eviction_after_summary_preserves_the_race_set() {
        let mut s = race_session();
        let before = s.summary();
        assert!(s.shadow_pages() > 0);
        let evicted = s.evict_shadow();
        assert!(evicted > 0);
        assert_eq!(s.shadow_pages(), 0);
        // Reports and race counts are unaffected by shadow eviction;
        // only allocation stats move.
        let after = s.summary();
        assert_eq!(after.reports, before.reports);
        assert_eq!(after.race_count, before.race_count);
        assert_eq!(after.counters, before.counters);
        assert!(after.stats.arena_pages_evicted >= before.stats.arena_pages_evicted);
    }

    #[test]
    fn host_fiber_is_named_after_the_rank() {
        let s = CheckSession::new(&SessionOptions::new(3));
        assert_eq!(s.runtime().fiber_name(FiberId::HOST), "host (rank 3)");
    }
}
