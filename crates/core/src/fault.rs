//! Deterministic, seeded fault injection for the simulated CUDA/MPI stack.
//!
//! Real CUDA-aware MPI runs fail: `cudaMalloc` returns OOM, streams get
//! destroyed while in use, requests error out. The simulator substrate
//! lets us *schedule* such failures deterministically: a [`FaultPlan`]
//! (seed + rate) decides at every interception site — each checked CUDA
//! or MPI call — whether the call returns its typed error instead of
//! running. The decision is a pure function of `(seed, site index)`:
//!
//! * **Deterministic**: the same plan over the same call sequence faults
//!   the same sites, every run. This is what makes per-seed race reports
//!   and traces reproducible (`chaos_soak` asserts it).
//! * **Rank-independent**: the site counter is per rank, but the hash
//!   does not mix the rank in. A bulk-synchronous app whose ranks issue
//!   the same call sequence therefore faults *in lockstep* on every
//!   rank, so a failed collective is abandoned by all ranks at once
//!   instead of deadlocking the survivors. (Asymmetric schedules still
//!   degrade gracefully: the simulated collectives time out with
//!   `MpiError::Timeout` rather than hanging — see `mpi-sim`.)
//!
//! Fired faults flow through the event pipeline as
//! [`crate::CusanEvent::ApiFault`], so recorded traces carry the fault
//! schedule and offline replay reproduces a faulty run bit-for-bit
//! without re-deciding anything.
//!
//! Configure via [`crate::ToolConfig::faults`] or the process-wide
//! `CUSAN_FAULTS=<seed>:<rate>` knob (rate is a probability in `[0, 1]`;
//! see [`crate::ctx::faults_env`]).

use std::cell::Cell;

/// Decisions per million sites (the fixed-point domain of the rate).
const PPM: u64 = 1_000_000;

/// A deterministic fault schedule: seed + fault rate.
///
/// The default (and [`FaultPlan::DISABLED`]) injects nothing and is
/// byte-for-byte invisible: no events, no counters, no behavior change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every site decision.
    pub seed: u64,
    /// Fault probability in parts per million (0 = disabled, 1_000_000 =
    /// every site faults).
    pub rate_ppm: u32,
}

impl FaultPlan {
    /// No fault injection (the default).
    pub const DISABLED: FaultPlan = FaultPlan {
        seed: 0,
        rate_ppm: 0,
    };

    /// A plan from a seed and a fault probability in `[0, 1]`.
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlan {
        let ppm = (rate * PPM as f64).round().clamp(0.0, PPM as f64) as u32;
        FaultPlan {
            seed,
            rate_ppm: ppm,
        }
    }

    /// True if this plan can ever fire.
    pub fn enabled(&self) -> bool {
        self.rate_ppm > 0
    }

    /// Parse the `CUSAN_FAULTS` knob format `<seed>:<rate>`, where
    /// `seed` is a u64 and `rate` a probability in `[0, 1]`
    /// (e.g. `42:0.01`).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed, rate) = s
            .split_once(':')
            .ok_or_else(|| format!("bad fault plan {s:?} (expected `<seed>:<rate>`)"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|e| format!("bad fault seed {seed:?}: {e}"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|e| format!("bad fault rate {rate:?}: {e}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        Ok(FaultPlan::with_rate(seed, rate))
    }

    /// Whether site number `site` faults under this plan.
    pub fn fires_at(&self, site: u64) -> bool {
        self.enabled() && splitmix64(self.seed ^ splitmix64(site)) % PPM < u64::from(self.rate_ppm)
    }

    /// Deterministic *network*-fault decision for frame-write site
    /// `site`: `None`, or which [`NetFault`] fires there. Fire/no-fire
    /// reuses [`Self::fires_at`] (so a plan's overall fault density is
    /// identical across API-fault and net-fault uses); the fault *kind*
    /// is drawn by a second, independent hash so the mix of kinds does
    /// not bias the firing schedule.
    pub fn net_fault_at(&self, site: u64) -> Option<NetFault> {
        if !self.fires_at(site) {
            return None;
        }
        let k = splitmix64(self.seed.rotate_left(17) ^ splitmix64(site ^ NET_KIND_SALT));
        Some(NetFault::ALL[(k % NetFault::ALL.len() as u64) as usize])
    }
}

/// Salt separating the kind-hash domain from the fire-hash domain.
const NET_KIND_SALT: u64 = 0x6E65_745F_6661_756C; // "net_faul"

/// A socket-level fault the serve chaos harness injects at one
/// frame-write site (the network analogue of an API-call fault).
///
/// Each kind exercises a different recovery path in `cusan-serve`:
/// torn frames and disconnects force session resumption from the last
/// acknowledged offset, stalls exercise the idle-session sweeper, and
/// duplicate resumes exercise the at-most-once replay trimming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFault {
    /// Write only a prefix of the frame, then drop the connection (a
    /// crash mid-`write`).
    TornFrame,
    /// Drop the connection cleanly between frames.
    Disconnect,
    /// Stall before the write long enough to look idle.
    StalledWrite,
    /// Replay the resume handshake and already-acknowledged frames (a
    /// retransmit racing its own ack).
    DuplicateResume,
}

impl NetFault {
    /// Every injectable kind, in kind-hash draw order.
    pub const ALL: [NetFault; 4] = [
        NetFault::TornFrame,
        NetFault::Disconnect,
        NetFault::StalledWrite,
        NetFault::DuplicateResume,
    ];
}

/// `splitmix64` — the classic 64-bit finalizer-style mixer. Chosen for
/// its avalanche behavior at tiny cost; the exact constants are part of
/// the determinism contract (changing them reschedules every plan).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-rank fault decision state: the plan plus a monotone site counter.
///
/// Every interception-site query advances the counter exactly once,
/// whether or not the site faults — the counter *is* the site numbering,
/// so it must advance identically on every rank for lockstep behavior.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    site: Cell<u64>,
}

impl FaultInjector {
    /// Injector for a plan (possibly [`FaultPlan::DISABLED`]).
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            site: Cell::new(0),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Sites queried so far.
    pub fn sites_visited(&self) -> u64 {
        self.site.get()
    }

    /// Advance to the next site; returns `Some(site)` if it faults.
    pub fn next_site(&self) -> Option<u64> {
        let site = self.site.get();
        self.site.set(site + 1);
        self.plan.fires_at(site).then_some(site)
    }

    /// Advance to the next site; returns the [`NetFault`] firing there,
    /// if any. Shares the site counter with [`Self::next_site`] — one
    /// injector numbers all its sites from a single sequence.
    pub fn next_net_fault(&self) -> Option<NetFault> {
        let site = self.site.get();
        self.site.set(site + 1);
        self.plan.net_fault_at(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::DISABLED);
        for _ in 0..10_000 {
            assert_eq!(inj.next_site(), None);
        }
        assert_eq!(inj.sites_visited(), 10_000);
        assert!(!FaultPlan::DISABLED.enabled());
        assert_eq!(FaultPlan::default(), FaultPlan::DISABLED);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::with_rate(42, 0.05);
        let a: Vec<bool> = (0..5_000).map(|s| plan.fires_at(s)).collect();
        let b: Vec<bool> = (0..5_000).map(|s| plan.fires_at(s)).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|f| **f).count();
        assert!(fired > 0, "5% over 5000 sites must fire");
        // A different seed reschedules.
        let other = FaultPlan::with_rate(43, 0.05);
        let c: Vec<bool> = (0..5_000).map(|s| other.fires_at(s)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn rate_approximates_probability() {
        let plan = FaultPlan::with_rate(7, 0.10);
        let n = 100_000u64;
        let fired = (0..n).filter(|s| plan.fires_at(*s)).count() as f64;
        let p = fired / n as f64;
        assert!((p - 0.10).abs() < 0.01, "observed rate {p}");
    }

    #[test]
    fn injector_counter_matches_plan() {
        let plan = FaultPlan::with_rate(3, 0.2);
        let inj = FaultInjector::new(plan);
        for site in 0..1_000 {
            let expect = plan.fires_at(site).then_some(site);
            assert_eq!(inj.next_site(), expect);
        }
    }

    #[test]
    fn parse_accepts_seed_colon_rate() {
        assert_eq!(
            FaultPlan::parse("42:0.01").unwrap(),
            FaultPlan {
                seed: 42,
                rate_ppm: 10_000
            }
        );
        assert_eq!(
            FaultPlan::parse("0:1").unwrap(),
            FaultPlan {
                seed: 0,
                rate_ppm: 1_000_000
            }
        );
        let zero_rate = FaultPlan::parse("9:0").unwrap();
        assert_eq!(zero_rate.seed, 9);
        assert!(!zero_rate.enabled());
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("42").is_err());
        assert!(FaultPlan::parse("x:0.5").is_err());
        assert!(FaultPlan::parse("42:nan").is_err());
        assert!(FaultPlan::parse("42:1.5").is_err());
        assert!(FaultPlan::parse("42:-0.1").is_err());
    }

    #[test]
    fn net_faults_follow_the_fire_schedule() {
        let plan = FaultPlan::with_rate(11, 0.25);
        for site in 0..2_000 {
            let nf = plan.net_fault_at(site);
            assert_eq!(nf.is_some(), plan.fires_at(site));
            assert_eq!(nf, plan.net_fault_at(site), "kind draw is deterministic");
        }
        let kinds: std::collections::HashSet<NetFault> =
            (0..2_000).filter_map(|s| plan.net_fault_at(s)).collect();
        assert_eq!(kinds.len(), NetFault::ALL.len(), "every kind is drawn");
        assert_eq!(FaultPlan::DISABLED.net_fault_at(0), None);
    }

    #[test]
    fn with_rate_clamps_and_rounds() {
        assert_eq!(FaultPlan::with_rate(0, 0.0).rate_ppm, 0);
        assert_eq!(FaultPlan::with_rate(0, 1.0).rate_ppm, 1_000_000);
        assert_eq!(FaultPlan::with_rate(0, 0.5).rate_ppm, 500_000);
    }
}
