//! Deterministic trace record/replay for the event pipeline.
//!
//! [`TraceSink`] serializes one rank's event stream; [`Trace::parse`] /
//! [`Trace::from_bytes`] read it back; and [`replay`] re-drives a parsed
//! trace through a fresh [`CheckSession`] via the same apply path used
//! live — no apps, no simulators. A replayed trace therefore reproduces
//! the live run's race reports and event counters exactly (asserted by
//! `crates/apps/tests/trace_replay.rs` across the whole testsuite).
//!
//! # Formats
//!
//! Two on-disk/on-wire encodings carry the identical record stream —
//! string-table entries interleaved with events, strings always emitted
//! before first use — and readers sniff which one a byte source holds
//! from its magic, so mixed corpora (old text fixtures next to fresh
//! binary recordings) all parse through the same entry points:
//!
//! * **v2 text** (the default, human-greppable): line-oriented UTF-8,
//!   described below.
//! * **v3 binary** (`CUSAN_TRACE_FORMAT=binary`, ~3× fewer bytes per
//!   event): LEB128 varints, delta-coded addresses/fiber ids/sync keys,
//!   one-byte opcodes, length-delimited records, and an end-of-trace
//!   marker that makes any truncation — even at a record boundary — a
//!   typed error. See [`crate::binio`] for the full layout.
//!
//! Unknown versions of either family fail parsing loudly instead of
//! silently misreading old recordings. [`transcode`] converts between
//! the formats record-for-record; because both writers are canonical,
//! text → binary → text reproduces the original bytes exactly.
//!
//! # The v2 text format
//!
//! The first line is the header:
//!
//! ```text
//! cusan-trace v2 rank <rank> tiered <0|1> budget <pages|none>
//! ```
//!
//! `tiered` and `budget` record the shadow-memory configuration so replay
//! reproduces the live shadow-tier counters *and* any best-effort
//! degradation (`dropped_annotations`) of a budget-capped run. Every
//! other line is either a string-table entry — `s <id> <label>` with `\`
//! and newline escaped, ids dense and ascending — or an event:
//!
//! | line | event |
//! |---|---|
//! | `fc <fiber> <name>` | fiber create |
//! | `fy <fiber>` / `fs <fiber>` | fiber switch (sync / no-sync) |
//! | `fd <fiber>` | fiber destroy |
//! | `hb <key>` / `ha <key>` | happens-before / happens-after (key hex) |
//! | `rr <addr> <len> <ctx>` / `wr …` | read / write range (addr hex) |
//! | `al <addr> <bytes> <kind>` | alloc marker (addr hex) |
//! | `fr <addr> <bytes>` | free marker (addr hex) |
//! | `qb <serial>` / `qc <serial>` | MPI request begin / complete |
//! | `cb <counter> <delta>` | named counter bump |
//! | `af <call> <site>` | injected API fault |
//! | `sc <kind> <arity> <chosen>` | resolved schedule choice point |
//!
//! All writers format identically, so two recordings of the same
//! deterministic run are byte-identical (see the Jacobi determinism
//! test) — in either format.

use crate::binio::{self, BinRecord};
use crate::event::{CtxInterner, CusanEvent, EventCounters, EventSink, StrId};
use crate::session::{CheckSession, SessionOptions};
use std::cell::RefCell;
use std::io::{BufRead, Write};
use std::rc::Rc;
use std::sync::Arc;
use tsan_rt::{FiberId, RaceReport, SnapshotReader, SnapshotWriter, SyncKey, TsanStats};

/// Magic prefix of a text trace header line. The version is part of the
/// magic: readers reject any other version with a clear message.
pub const TRACE_MAGIC: &str = "cusan-trace v2";

/// Version-independent prefix, used to tell "old/new version" apart from
/// "not a trace at all" in error messages.
const TRACE_FAMILY: &str = "cusan-trace v";

/// Which encoding a trace writer produces. Readers never need this —
/// they sniff the magic — so it only appears on the producer side
/// ([`crate::ToolConfig::trace_format`], `CUSAN_TRACE_FORMAT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// v2 line-oriented UTF-8 (the default; human-greppable).
    Text,
    /// v3 length-delimited varint records (see [`crate::binio`]).
    Binary,
}

impl TraceFormat {
    /// Parse the `CUSAN_TRACE_FORMAT` knob's value.
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "text" => Some(TraceFormat::Text),
            "binary" => Some(TraceFormat::Binary),
            _ => None,
        }
    }

    /// The knob spelling (`"text"` / `"binary"`).
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
        }
    }
}

/// Append `label` with `\` and newline escaped — one pass, no
/// intermediate allocations (both escapes are single-byte, so the byte
/// loop is also correct for multi-byte UTF-8 sequences).
fn write_escaped(out: &mut Vec<u8>, label: &str) {
    for &b in label.as_bytes() {
        match b {
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            _ => out.push(b),
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// String id an event references, if any — both parsers enforce that it
/// is already defined by the string table.
fn event_used_str(ev: &CusanEvent) -> Option<StrId> {
    match *ev {
        CusanEvent::FiberCreate { name, .. } => Some(name),
        CusanEvent::ReadRange { ctx, .. } | CusanEvent::WriteRange { ctx, .. } => Some(ctx),
        CusanEvent::Alloc { kind, .. } => Some(kind),
        CusanEvent::CounterBump { counter, .. } => Some(counter),
        CusanEvent::ApiFault { call, .. } => Some(call),
        CusanEvent::ScheduleChoice { kind, .. } => Some(kind),
        _ => None,
    }
}

/// Format-dispatched record writer — the single producer-side encoder
/// shared by [`TraceSink`] (live recording) and [`transcode`]. Both
/// formats' string-table paths go through it, and both are canonical:
/// re-encoding a decoded stream reproduces the input bytes.
enum RecordWriter {
    Text,
    Binary(binio::Encoder),
}

impl RecordWriter {
    fn new(format: TraceFormat) -> RecordWriter {
        match format {
            TraceFormat::Text => RecordWriter::Text,
            TraceFormat::Binary => RecordWriter::Binary(binio::Encoder::new()),
        }
    }

    fn header(&mut self, out: &mut Vec<u8>, rank: usize, tiered: bool, budget: Option<usize>) {
        match self {
            RecordWriter::Text => {
                let budget = budget.map_or_else(|| "none".to_string(), |b| b.to_string());
                writeln!(
                    out,
                    "{TRACE_MAGIC} rank {rank} tiered {} budget {budget}",
                    u8::from(tiered)
                )
                .expect("writes to Vec are infallible");
            }
            RecordWriter::Binary(_) => binio::Encoder::encode_header(out, rank, tiered, budget),
        }
    }

    fn str_record(&mut self, out: &mut Vec<u8>, id: u32, label: &str) {
        match self {
            RecordWriter::Text => {
                write!(out, "s {id} ").expect("writes to Vec are infallible");
                write_escaped(out, label);
                out.push(b'\n');
            }
            RecordWriter::Binary(enc) => enc.encode_str(out, id, label),
        }
    }

    fn event(&mut self, out: &mut Vec<u8>, ev: &CusanEvent) {
        let enc = match self {
            RecordWriter::Text => {
                match *ev {
                    CusanEvent::FiberCreate { fiber, name } => {
                        writeln!(out, "fc {} {}", fiber.index(), name.0)
                    }
                    CusanEvent::FiberSwitch { fiber, sync: true } => {
                        writeln!(out, "fy {}", fiber.index())
                    }
                    CusanEvent::FiberSwitch { fiber, sync: false } => {
                        writeln!(out, "fs {}", fiber.index())
                    }
                    CusanEvent::FiberDestroy { fiber } => writeln!(out, "fd {}", fiber.index()),
                    CusanEvent::HappensBefore { key } => writeln!(out, "hb {:x}", key.0),
                    CusanEvent::HappensAfter { key } => writeln!(out, "ha {:x}", key.0),
                    CusanEvent::ReadRange { addr, len, ctx } => {
                        writeln!(out, "rr {addr:x} {len} {}", ctx.0)
                    }
                    CusanEvent::WriteRange { addr, len, ctx } => {
                        writeln!(out, "wr {addr:x} {len} {}", ctx.0)
                    }
                    CusanEvent::Alloc { addr, bytes, kind } => {
                        writeln!(out, "al {addr:x} {bytes} {}", kind.0)
                    }
                    CusanEvent::Free { addr, bytes } => writeln!(out, "fr {addr:x} {bytes}"),
                    CusanEvent::RequestBegin { serial } => writeln!(out, "qb {serial}"),
                    CusanEvent::RequestComplete { serial } => writeln!(out, "qc {serial}"),
                    CusanEvent::CounterBump { counter, delta } => {
                        writeln!(out, "cb {} {delta}", counter.0)
                    }
                    CusanEvent::ApiFault { call, site } => writeln!(out, "af {} {site}", call.0),
                    CusanEvent::ScheduleChoice {
                        kind,
                        arity,
                        chosen,
                    } => writeln!(out, "sc {} {arity} {chosen}", kind.0),
                }
                .expect("writes to Vec are infallible");
                return;
            }
            RecordWriter::Binary(enc) => enc,
        };
        enc.encode_event(out, ev);
    }

    /// Terminate the stream. Binary traces get the end-of-trace marker
    /// (which is what makes every truncation detectable); text traces
    /// need nothing.
    fn end(&mut self, out: &mut Vec<u8>) {
        if let RecordWriter::Binary(enc) = self {
            enc.encode_end(out);
        }
    }
}

/// A sink that serializes the event stream into a shared byte buffer.
///
/// String-table entries are flushed lazily: before writing an event
/// record, every interner entry not yet written is emitted, so any id an
/// event references is defined earlier in the stream. Binary traces are
/// *sealed* with an end-of-trace marker — via [`EventSink::finish`]
/// (called by `ToolCtx::finish_sinks` before the harness collects the
/// buffer) or, as a backstop, on drop.
pub struct TraceSink {
    buf: Rc<RefCell<Vec<u8>>>,
    written: usize,
    writer: RecordWriter,
    sealed: bool,
}

impl TraceSink {
    /// Text-format sink (the historical default). Returns the sink and
    /// the shared buffer handle the caller reads after the run.
    pub fn new(
        rank: usize,
        tiered: bool,
        budget: Option<usize>,
    ) -> (TraceSink, Rc<RefCell<Vec<u8>>>) {
        Self::with_format(TraceFormat::Text, rank, tiered, budget)
    }

    /// Create a sink in the given format whose header records `rank` and
    /// the shadow configuration (tiering + page budget).
    pub fn with_format(
        format: TraceFormat,
        rank: usize,
        tiered: bool,
        budget: Option<usize>,
    ) -> (TraceSink, Rc<RefCell<Vec<u8>>>) {
        let mut writer = RecordWriter::new(format);
        let mut out = Vec::new();
        writer.header(&mut out, rank, tiered, budget);
        let buf = Rc::new(RefCell::new(out));
        (
            TraceSink {
                buf: Rc::clone(&buf),
                written: 0,
                writer,
                sealed: false,
            },
            buf,
        )
    }

    /// Seal the stream (idempotent): binary traces get their
    /// end-of-trace marker, making the buffer a complete trace.
    pub fn seal(&mut self) {
        if !self.sealed {
            self.sealed = true;
            self.writer.end(&mut self.buf.borrow_mut());
        }
    }
}

impl EventSink for TraceSink {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_event(&mut self, ev: &CusanEvent, strings: &CtxInterner) {
        debug_assert!(!self.sealed, "event after the trace was sealed");
        let mut buf = self.buf.borrow_mut();
        while self.written < strings.len() {
            let id = StrId(self.written as u32);
            self.writer.str_record(&mut buf, id.0, strings.label(id));
            self.written += 1;
        }
        self.writer.event(&mut buf, ev);
    }

    fn finish(&mut self) {
        self.seal();
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.seal();
    }
}

/// A parsed trace: one rank's complete event stream plus its string table.
#[derive(Debug)]
pub struct Trace {
    /// Rank the trace was recorded on (names the replay host fiber).
    pub rank: usize,
    /// Shadow-tier configuration of the recording run.
    pub tiered: bool,
    /// Shadow page budget of the recording run (`None` = unlimited).
    pub budget: Option<usize>,
    /// The string table.
    pub strings: CtxInterner,
    /// The events, in emission order.
    pub events: Vec<CusanEvent>,
}

fn parse_err(lineno: usize, msg: impl Into<String>) -> String {
    format!("trace line {}: {}", lineno + 1, msg.into())
}

fn rec_err(recno: u64, msg: impl Into<String>) -> String {
    format!("trace record {}: {}", recno, msg.into())
}

/// The parsed header of a trace (common to both formats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Rank the trace was recorded on.
    pub rank: usize,
    /// Shadow-tier configuration of the recording run.
    pub tiered: bool,
    /// Shadow page budget of the recording run (`None` = unlimited).
    pub budget: Option<usize>,
}

impl TraceHeader {
    /// Parse the text header line (without its trailing newline).
    pub fn parse(header: &str) -> Result<TraceHeader, String> {
        let rest = header.strip_prefix(TRACE_MAGIC).ok_or_else(|| {
            if header.starts_with(TRACE_FAMILY) {
                format!(
                    "unsupported trace format version: got {:?}, this reader only \
                     understands `{TRACE_MAGIC}` (re-record the trace)",
                    header
                        .split_whitespace()
                        .take(2)
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            } else {
                format!("bad header {header:?} (expected `{TRACE_MAGIC} …`)")
            }
        })?;
        let hf: Vec<&str> = rest.split_whitespace().collect();
        match hf.as_slice() {
            ["rank", r, "tiered", t, "budget", b] => Ok(TraceHeader {
                rank: r.parse::<usize>().map_err(|e| format!("bad rank: {e}"))?,
                tiered: match *t {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad tiered flag {other:?}")),
                },
                budget: match *b {
                    "none" => None,
                    pages => Some(
                        pages
                            .parse::<usize>()
                            .map_err(|e| format!("bad budget: {e}"))?,
                    ),
                },
            }),
            _ => Err(format!("bad header fields {rest:?}")),
        }
    }
}

/// One parsed body record of a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A string-table entry, already interned into the parser's table
    /// (the `Arc` handle lets consumers share the label bytes instead of
    /// re-copying them — the serve path's cross-session dedup).
    Str {
        /// The entry's dense id.
        id: StrId,
        /// The unescaped label.
        label: Arc<str>,
    },
    /// An event record.
    Event(CusanEvent),
}

/// Incremental (push-mode) parser for *text* trace body lines.
///
/// Feed it complete lines one at a time and it maintains the string
/// table, the density/defined-id validation, and line numbers for error
/// messages. [`TracePushParser`] wraps it (next to its binary
/// counterpart) behind format sniffing; [`TraceReader`] wraps *that* for
/// pull-mode iteration over a [`BufRead`].
#[derive(Debug, Default)]
pub struct TraceLineParser {
    strings: CtxInterner,
    /// Body lines consumed so far (the header is line 0, so the first
    /// body line is 1 — matching the whole-file parser's numbering).
    lineno: usize,
}

impl TraceLineParser {
    /// Parser with an empty string table, positioned after the header.
    pub fn new() -> Self {
        Self::default()
    }

    /// The string table accumulated so far.
    pub fn strings(&self) -> &CtxInterner {
        &self.strings
    }

    /// Consume the parser into its string table.
    pub fn into_strings(self) -> CtxInterner {
        self.strings
    }

    /// Body lines consumed so far (the serve spill format records this
    /// so a restored parser keeps numbering errors like the original).
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Rebuild a parser mid-stream from a snapshotted string table and
    /// line position — the inverse of [`Self::into_strings`] +
    /// [`Self::lineno`], used when a spilled serve session is restored.
    pub fn from_parts(strings: CtxInterner, lineno: usize) -> Self {
        TraceLineParser { strings, lineno }
    }

    /// Parse one body line (without its trailing newline). Returns
    /// `Ok(None)` for empty lines.
    pub fn parse_line(&mut self, line: &str) -> Result<Option<TraceRecord>, String> {
        self.lineno += 1;
        let lineno = self.lineno;
        if line.is_empty() {
            return Ok(None);
        }
        let (kind, body) = line
            .split_once(' ')
            .ok_or_else(|| parse_err(lineno, format!("malformed line {line:?}")))?;
        let fields: Vec<&str> = body.split(' ').collect();
        let dec = |i: usize| -> Result<u64, String> {
            fields
                .get(i)
                .ok_or_else(|| parse_err(lineno, "missing field"))?
                .parse::<u64>()
                .map_err(|e| parse_err(lineno, format!("bad number: {e}")))
        };
        let hex = |i: usize| -> Result<u64, String> {
            u64::from_str_radix(
                fields
                    .get(i)
                    .ok_or_else(|| parse_err(lineno, "missing field"))?,
                16,
            )
            .map_err(|e| parse_err(lineno, format!("bad hex number: {e}")))
        };
        let fib =
            |i: usize| -> Result<FiberId, String> { Ok(FiberId::from_index(dec(i)? as usize)) };
        let sid = |i: usize| -> Result<StrId, String> { Ok(StrId(dec(i)? as u32)) };
        let ev = match kind {
            "s" => {
                // `s <id> <label>`: the label is everything after the id,
                // spaces included.
                let (id, label) = body
                    .split_once(' ')
                    .ok_or_else(|| parse_err(lineno, "string entry without label"))?;
                let id: u32 = id
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad string id: {e}")))?;
                let interned = self.strings.intern(&unescape(label));
                if interned.0 != id {
                    return Err(parse_err(
                        lineno,
                        format!(
                            "string table not dense: got id {id}, expected {}",
                            interned.0
                        ),
                    ));
                }
                return Ok(Some(TraceRecord::Str {
                    id: interned,
                    label: self.strings.shared_label(interned).expect("just interned"),
                }));
            }
            "fc" => CusanEvent::FiberCreate {
                fiber: fib(0)?,
                name: sid(1)?,
            },
            "fy" => CusanEvent::FiberSwitch {
                fiber: fib(0)?,
                sync: true,
            },
            "fs" => CusanEvent::FiberSwitch {
                fiber: fib(0)?,
                sync: false,
            },
            "fd" => CusanEvent::FiberDestroy { fiber: fib(0)? },
            "hb" => CusanEvent::HappensBefore {
                key: SyncKey(hex(0)?),
            },
            "ha" => CusanEvent::HappensAfter {
                key: SyncKey(hex(0)?),
            },
            "rr" => CusanEvent::ReadRange {
                addr: hex(0)?,
                len: dec(1)?,
                ctx: sid(2)?,
            },
            "wr" => CusanEvent::WriteRange {
                addr: hex(0)?,
                len: dec(1)?,
                ctx: sid(2)?,
            },
            "al" => CusanEvent::Alloc {
                addr: hex(0)?,
                bytes: dec(1)?,
                kind: sid(2)?,
            },
            "fr" => CusanEvent::Free {
                addr: hex(0)?,
                bytes: dec(1)?,
            },
            "qb" => CusanEvent::RequestBegin { serial: dec(0)? },
            "qc" => CusanEvent::RequestComplete { serial: dec(0)? },
            "cb" => CusanEvent::CounterBump {
                counter: sid(0)?,
                delta: dec(1)?,
            },
            "af" => CusanEvent::ApiFault {
                call: sid(0)?,
                site: dec(1)?,
            },
            "sc" => CusanEvent::ScheduleChoice {
                kind: sid(0)?,
                arity: dec(1)?,
                chosen: dec(2)?,
            },
            other => return Err(parse_err(lineno, format!("unknown event kind {other:?}"))),
        };
        // Events must not reference string ids the table hasn't defined.
        if let Some(id) = event_used_str(&ev) {
            if id.0 as usize >= self.strings.len() {
                return Err(parse_err(lineno, format!("undefined string id {}", id.0)));
            }
        }
        Ok(Some(TraceRecord::Event(ev)))
    }
}

/// Outcome of one binary-record decode step (internal).
enum BinStep {
    /// The frame at the front of the input is incomplete.
    NeedMore,
    /// The end-of-trace marker, consuming this many bytes.
    End(usize),
    /// One validated record, consuming this many bytes.
    Record(usize, TraceRecord),
}

/// Incremental parser for *binary* trace body records — the v3
/// counterpart of [`TraceLineParser`], enforcing the same string-table
/// density and defined-id rules with record numbers in place of line
/// numbers.
#[derive(Debug, Default)]
struct BinRecordParser {
    strings: CtxInterner,
    dec: binio::Decoder,
    /// Records consumed so far (the header is record 0).
    recno: u64,
    saw_end: bool,
}

impl BinRecordParser {
    fn next_record(&mut self, bytes: &[u8]) -> Result<BinStep, String> {
        if self.saw_end {
            return Err(rec_err(
                self.recno + 1,
                "data after the end-of-trace marker",
            ));
        }
        match self.dec.decode_record(bytes) {
            Ok(None) => Ok(BinStep::NeedMore),
            Err(e) => Err(rec_err(self.recno + 1, e.to_string())),
            Ok(Some((n, rec))) => {
                self.recno += 1;
                match rec {
                    BinRecord::End => {
                        self.saw_end = true;
                        Ok(BinStep::End(n))
                    }
                    BinRecord::Str { id, label } => {
                        let interned = self.strings.intern(&label);
                        if interned.0 != id {
                            return Err(rec_err(
                                self.recno,
                                format!(
                                    "string table not dense: got id {id}, expected {}",
                                    interned.0
                                ),
                            ));
                        }
                        Ok(BinStep::Record(
                            n,
                            TraceRecord::Str {
                                id: interned,
                                label: self.strings.shared_label(interned).expect("just interned"),
                            },
                        ))
                    }
                    BinRecord::Event(ev) => {
                        if let Some(id) = event_used_str(&ev) {
                            if id.0 as usize >= self.strings.len() {
                                return Err(rec_err(
                                    self.recno,
                                    format!("undefined string id {}", id.0),
                                ));
                            }
                        }
                        Ok(BinStep::Record(n, TraceRecord::Event(ev)))
                    }
                }
            }
        }
    }
}

/// One item a [`TracePushParser`] yields.
#[derive(Debug)]
pub enum TraceItem {
    /// The trace header — always the first item.
    Header(TraceHeader),
    /// A body record.
    Record(TraceRecord),
}

#[derive(Debug)]
enum PushState {
    /// Deciding text vs binary from the first bytes.
    Sniff,
    /// Text decided; waiting for the complete header line.
    TextHeader,
    /// Text header accepted; body lines stream through the line parser.
    TextBody(TraceLineParser),
    /// Binary magic matched; waiting for the complete header fields.
    BinHeader,
    /// Binary header accepted; body records stream through the decoder.
    BinBody(BinRecordParser),
}

/// Format-sniffing push parser: feed it byte chunks with arbitrary
/// boundaries — mid-line, mid-varint, mid-code-point — and poll items
/// out. This is the one trace-decoding engine: [`TraceReader`] wraps it
/// for pull iteration, and `cusan-serve`'s ingest drives it directly
/// from reassembled socket frames.
///
/// The first bytes decide the format: streams beginning with the binary
/// family magic (`cusanbt`) decode as v3 records (wrong versions fail
/// loudly), everything else parses as text lines (where a non-`v2`
/// header fails loudly too). The parser buffers only the unconsumed
/// tail, and its complete mid-stream state — pending bytes, string
/// table, position counters, binary delta state — snapshots into the
/// serve spill format via [`TracePushParser::spill_to`].
#[derive(Debug)]
pub struct TracePushParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted on the next feed).
    start: usize,
    eof: bool,
    state: PushState,
}

impl Default for TracePushParser {
    fn default() -> Self {
        Self::new()
    }
}

impl TracePushParser {
    /// Fresh parser, format undecided until the first bytes arrive.
    pub fn new() -> Self {
        TracePushParser {
            buf: Vec::new(),
            start: 0,
            eof: false,
            state: PushState::Sniff,
        }
    }

    /// Append one chunk of the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Declare end-of-stream: a final text line without a trailing
    /// newline becomes parseable, and incomplete binary records (or a
    /// missing end-of-trace marker) become typed truncation errors on
    /// the next [`TracePushParser::poll`].
    pub fn close(&mut self) {
        self.eof = true;
    }

    /// The sniffed format (`None` until the first bytes decide it).
    pub fn format(&self) -> Option<TraceFormat> {
        match self.state {
            PushState::Sniff => None,
            PushState::TextHeader | PushState::TextBody(_) => Some(TraceFormat::Text),
            PushState::BinHeader | PushState::BinBody(_) => Some(TraceFormat::Binary),
        }
    }

    /// True once the header has been yielded (body state).
    pub fn in_body(&self) -> bool {
        matches!(self.state, PushState::TextBody(_) | PushState::BinBody(_))
    }

    /// The string table accumulated so far (`None` before the header).
    pub fn strings(&self) -> Option<&CtxInterner> {
        match &self.state {
            PushState::TextBody(p) => Some(p.strings()),
            PushState::BinBody(p) => Some(&p.strings),
            _ => None,
        }
    }

    /// Consume the parser into its string table (empty if the header
    /// never arrived).
    pub fn into_strings(self) -> CtxInterner {
        match self.state {
            PushState::TextBody(p) => p.into_strings(),
            PushState::BinBody(p) => p.strings,
            _ => CtxInterner::new(),
        }
    }

    /// Produce the next item, or `Ok(None)` when more bytes are needed
    /// (before [`Self::close`]) / the stream is fully drained (after).
    /// Errors are not consumed: a poisoned stream keeps returning the
    /// same error, and callers are expected to stop at the first one.
    pub fn poll(&mut self) -> Result<Option<TraceItem>, String> {
        loop {
            match self.state {
                PushState::Sniff => {
                    let p = &self.buf[self.start..];
                    let probe = p.len().min(binio::BIN_FAMILY.len());
                    if p[..probe] == binio::BIN_FAMILY[..probe] {
                        if p.len() < binio::BIN_MAGIC.len() {
                            if !self.eof {
                                return Ok(None);
                            }
                            if p.is_empty() {
                                return Err("empty trace".to_string());
                            }
                            // A ≤7-byte stream that is a prefix of the
                            // binary magic can only be a cut-off trace
                            // (text headers diverge from the family
                            // within 6 bytes).
                            return Err("binary trace truncated inside the header".to_string());
                        }
                        self.state = PushState::BinHeader;
                    } else {
                        self.state = PushState::TextHeader;
                    }
                }
                PushState::TextHeader => {
                    let p = &self.buf[self.start..];
                    let (line_len, consumed) = match p.iter().position(|&b| b == b'\n') {
                        Some(i) => (i, i + 1),
                        None if self.eof => (p.len(), p.len()),
                        None => return Ok(None),
                    };
                    let line = std::str::from_utf8(&p[..line_len])
                        .map_err(|_| "trace header is not valid UTF-8".to_string())?;
                    let header = TraceHeader::parse(line)?;
                    self.start += consumed;
                    self.state = PushState::TextBody(TraceLineParser::new());
                    return Ok(Some(TraceItem::Header(header)));
                }
                PushState::TextBody(ref mut parser) => {
                    let p = &self.buf[self.start..];
                    let (line_len, consumed) = match p.iter().position(|&b| b == b'\n') {
                        Some(i) => (i, i + 1),
                        None if self.eof && !p.is_empty() => (p.len(), p.len()),
                        None => return Ok(None),
                    };
                    let line = std::str::from_utf8(&p[..line_len])
                        .map_err(|_| parse_err(parser.lineno() + 1, "line is not valid UTF-8"))?;
                    let rec = parser.parse_line(line)?;
                    self.start += consumed;
                    if let Some(rec) = rec {
                        return Ok(Some(TraceItem::Record(rec)));
                    }
                }
                PushState::BinHeader => {
                    let p = &self.buf[self.start..];
                    match binio::decode_header(p) {
                        Ok(Some((n, rank, tiered, budget))) => {
                            self.start += n;
                            self.state = PushState::BinBody(BinRecordParser::default());
                            return Ok(Some(TraceItem::Header(TraceHeader {
                                rank,
                                tiered,
                                budget,
                            })));
                        }
                        Ok(None) if self.eof => {
                            return Err("binary trace truncated inside the header".to_string())
                        }
                        Ok(None) => return Ok(None),
                        Err(e) => return Err(format!("trace header: {e}")),
                    }
                }
                PushState::BinBody(ref mut parser) => {
                    let p = &self.buf[self.start..];
                    if p.is_empty() {
                        if self.eof && !parser.saw_end {
                            return Err("binary trace truncated: missing end-of-trace marker \
                                 (stream cut at a record boundary)"
                                .to_string());
                        }
                        return Ok(None);
                    }
                    match parser.next_record(p)? {
                        BinStep::Record(n, rec) => {
                            self.start += n;
                            return Ok(Some(TraceItem::Record(rec)));
                        }
                        BinStep::End(n) => {
                            self.start += n;
                        }
                        BinStep::NeedMore if self.eof => {
                            return Err(rec_err(
                                parser.recno + 1,
                                "binary trace truncated mid-record",
                            ));
                        }
                        BinStep::NeedMore => return Ok(None),
                    }
                }
            }
        }
    }

    /// Serialize the complete mid-stream state — pending bytes, format
    /// decision, string table, position counters, binary delta state —
    /// into a snapshot (the serve spill format's parser section).
    /// [`TracePushParser::restore_from`] rebuilds a parser that
    /// continues byte-for-byte identically.
    pub fn spill_to(&self, w: &mut SnapshotWriter) {
        w.put_bytes(&self.buf[self.start..]);
        match &self.state {
            // Pre-header states re-sniff their pending bytes on restore.
            PushState::Sniff | PushState::TextHeader | PushState::BinHeader => w.put_u8(0),
            PushState::TextBody(p) => {
                w.put_u8(1);
                w.put_u64(p.lineno() as u64);
                spill_labels(w, p.strings());
            }
            PushState::BinBody(p) => {
                w.put_u8(2);
                w.put_u64(p.recno);
                w.put_bool(p.saw_end);
                spill_labels(w, &p.strings);
                let ds = p.dec.state();
                w.put_u64(ds.addr);
                w.put_u64(ds.fiber);
                w.put_u64(ds.key);
            }
        }
    }

    /// Rebuild a parser from [`TracePushParser::spill_to`] output.
    pub fn restore_from(r: &mut SnapshotReader) -> Result<TracePushParser, String> {
        let err = |e: tsan_rt::SnapshotError| format!("corrupt parser snapshot: {e}");
        let pending = r.get_bytes().map_err(err)?.to_vec();
        let tag = r.get_u8().map_err(err)?;
        let state = match tag {
            0 => PushState::Sniff,
            1 => {
                let lineno = r.get_u64().map_err(err)? as usize;
                let strings = restore_labels(r)?;
                PushState::TextBody(TraceLineParser::from_parts(strings, lineno))
            }
            2 => {
                let recno = r.get_u64().map_err(err)?;
                let saw_end = r.get_bool().map_err(err)?;
                let strings = restore_labels(r)?;
                let deltas = binio::DeltaState {
                    addr: r.get_u64().map_err(err)?,
                    fiber: r.get_u64().map_err(err)?,
                    key: r.get_u64().map_err(err)?,
                };
                PushState::BinBody(BinRecordParser {
                    strings,
                    dec: binio::Decoder::from_state(deltas),
                    recno,
                    saw_end,
                })
            }
            t => return Err(format!("corrupt parser snapshot: unknown state tag {t}")),
        };
        Ok(TracePushParser {
            buf: pending,
            start: 0,
            eof: false,
            state,
        })
    }
}

fn spill_labels(w: &mut SnapshotWriter, strings: &CtxInterner) {
    w.put_len(strings.len());
    for i in 0..strings.len() {
        w.put_str(strings.label(StrId(i as u32)));
    }
}

fn restore_labels(r: &mut SnapshotReader) -> Result<CtxInterner, String> {
    let err = |e: tsan_rt::SnapshotError| format!("corrupt parser snapshot: {e}");
    let n = r.get_len().map_err(err)?;
    let mut strings = CtxInterner::new();
    for i in 0..n {
        let label = r.get_str().map_err(err)?;
        if strings.intern(&label) != StrId(i as u32) {
            return Err(format!(
                "corrupt parser snapshot: duplicate parser label {label:?}"
            ));
        }
    }
    Ok(strings)
}

fn refill<R: BufRead>(input: &mut R, parser: &mut TracePushParser) -> Result<bool, String> {
    let chunk = input
        .fill_buf()
        .map_err(|e| format!("trace read error: {e}"))?;
    if chunk.is_empty() {
        return Ok(false);
    }
    let n = chunk.len();
    parser.feed(chunk);
    input.consume(n);
    Ok(true)
}

/// Pull-mode streaming reader: iterates [`TraceRecord`]s straight off a
/// [`BufRead`] source without materializing the trace, sniffing the
/// format from the magic. The unconsumed tail of one chunk is the only
/// per-trace buffer.
pub struct TraceReader<R> {
    input: R,
    parser: TracePushParser,
    header: TraceHeader,
    closed: bool,
    done: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Read and parse the header (text or binary); subsequent records
    /// come from [`Iterator::next`].
    pub fn new(mut input: R) -> Result<Self, String> {
        let mut parser = TracePushParser::new();
        let mut closed = false;
        let header = loop {
            match parser.poll()? {
                Some(TraceItem::Header(h)) => break h,
                Some(TraceItem::Record(_)) => unreachable!("record before header"),
                None if closed => return Err("empty trace".to_string()),
                None => {
                    if !refill(&mut input, &mut parser)? {
                        parser.close();
                        closed = true;
                    }
                }
            }
        };
        Ok(TraceReader {
            input,
            parser,
            header,
            closed,
            done: false,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The sniffed format of the underlying stream.
    pub fn format(&self) -> TraceFormat {
        self.parser
            .format()
            .expect("format decided with the header")
    }

    /// The string table accumulated so far.
    pub fn strings(&self) -> &CtxInterner {
        self.parser.strings().expect("body state after header")
    }

    /// Consume the reader into its string table.
    pub fn into_strings(self) -> CtxInterner {
        self.parser.into_strings()
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.parser.poll() {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(Some(TraceItem::Record(rec))) => return Some(Ok(rec)),
                Ok(Some(TraceItem::Header(_))) => unreachable!("second header"),
                Ok(None) => {
                    if self.closed {
                        self.done = true;
                        return None;
                    }
                    match refill(&mut self.input, &mut self.parser) {
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                        Ok(true) => {}
                        Ok(false) => {
                            self.parser.close();
                            self.closed = true;
                        }
                    }
                }
            }
        }
    }
}

impl Trace {
    /// Parse the text format produced by [`TraceSink`]. Wrapper over the
    /// streaming [`Trace::from_reader`].
    pub fn parse(text: &str) -> Result<Trace, String> {
        Self::from_reader(text.as_bytes())
    }

    /// Parse a trace in whichever format `bytes` holds.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, String> {
        Self::from_reader(bytes)
    }

    /// Parse a whole trace from any buffered byte source (text or
    /// binary, sniffed from the magic).
    pub fn from_reader<R: BufRead>(input: R) -> Result<Trace, String> {
        let mut reader = TraceReader::new(input)?;
        let mut events = Vec::new();
        for rec in &mut reader {
            if let TraceRecord::Event(ev) = rec? {
                events.push(ev);
            }
        }
        let TraceHeader {
            rank,
            tiered,
            budget,
        } = *reader.header();
        Ok(Trace {
            rank,
            tiered,
            budget,
            strings: reader.into_strings(),
            events,
        })
    }
}

/// Re-encode a trace stream into `format`, record-for-record — the
/// interleaving of string-table entries and events is preserved, so a
/// transcoded trace replays identically and a round trip (text → binary
/// → text) reproduces the original bytes exactly (both writers are
/// canonical).
pub fn transcode<R: BufRead>(input: R, format: TraceFormat) -> Result<Vec<u8>, String> {
    let mut reader = TraceReader::new(input)?;
    let h = *reader.header();
    let mut writer = RecordWriter::new(format);
    let mut out = Vec::new();
    writer.header(&mut out, h.rank, h.tiered, h.budget);
    for rec in &mut reader {
        match rec? {
            TraceRecord::Str { id, label } => writer.str_record(&mut out, id.0, &label),
            TraceRecord::Event(ev) => writer.event(&mut out, &ev),
        }
    }
    writer.end(&mut out);
    Ok(out)
}

/// Result of replaying a trace offline.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Retained race reports, identical to the live run's.
    pub reports: Vec<RaceReport>,
    /// Detector counters, identical to the live run's.
    pub stats: TsanStats,
    /// Pipeline counters folded from the replayed events.
    pub counters: EventCounters,
}

/// Re-drive a recorded trace through a fresh [`CheckSession`].
///
/// Uses the same apply path as the live run ([`CheckSession::apply`]),
/// with the recorded rank's host-fiber name and shadow configuration, so
/// reports (fiber and context labels included), [`TsanStats`], and
/// [`EventCounters`] all reproduce exactly. (The arena is a pure
/// allocation strategy, so traces never record it; the session reads the
/// same frozen env knob the live run's ToolCtx uses, keeping live and
/// replayed stats — `arena_*` fields included — identical within one
/// process.)
pub fn replay(trace: &Trace) -> ReplayOutcome {
    let mut session = CheckSession::new(&SessionOptions::for_trace(
        trace.rank,
        trace.tiered,
        trace.budget,
    ));
    for i in 0..trace.strings.len() {
        let label = trace
            .strings
            .shared_label(StrId(i as u32))
            .expect("string table is dense");
        session.intern_shared(&label);
    }
    for ev in &trace.events {
        session.apply(ev);
    }
    let summary = session.into_summary();
    ReplayOutcome {
        reports: summary.reports,
        stats: summary.stats,
        counters: summary.counters,
    }
}

/// Streaming replay: drive records from a [`BufRead`] source (either
/// format) straight into a session without materializing a [`Trace`].
/// Equivalent to `replay(&Trace::from_reader(input)?)` with O(1) memory
/// in the trace length.
pub fn replay_stream<R: BufRead>(input: R) -> Result<ReplayOutcome, String> {
    let mut reader = TraceReader::new(input)?;
    let h = *reader.header();
    let mut session = CheckSession::new(&SessionOptions::for_trace(h.rank, h.tiered, h.budget));
    for rec in &mut reader {
        match rec? {
            TraceRecord::Str { label, .. } => {
                session.intern_shared(&label);
            }
            TraceRecord::Event(ev) => session.apply(&ev),
        }
    }
    let summary = session.into_summary();
    Ok(ReplayOutcome {
        reports: summary.reports,
        stats: summary.stats,
        counters: summary.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_as(format: TraceFormat, events: &[(CusanEvent, &CtxInterner)]) -> Vec<u8> {
        let (mut sink, buf) = TraceSink::with_format(format, 3, true, None);
        for (ev, strings) in events {
            sink.on_event(ev, strings);
        }
        sink.seal();
        let out = buf.borrow().clone();
        out
    }

    fn record(events: &[(CusanEvent, &CtxInterner)]) -> String {
        String::from_utf8(record_as(TraceFormat::Text, events)).expect("text traces are UTF-8")
    }

    fn sample_events(strings: &mut CtxInterner) -> Vec<CusanEvent> {
        let name = strings.intern("cuda stream 0 (default)");
        let ctx = strings.intern("kernel k arg#0 (p) [write]");
        let f = FiberId::from_index(1);
        vec![
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x4000,
                len: 8192,
                ctx,
            },
            CusanEvent::HappensBefore {
                key: SyncKey(0x0100_0000_0000),
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::HappensAfter {
                key: SyncKey(0x0100_0000_0000),
            },
            CusanEvent::Alloc {
                addr: 0x4000,
                bytes: 8192,
                kind: name,
            },
            CusanEvent::Free {
                addr: 0x4000,
                bytes: 8192,
            },
            CusanEvent::RequestBegin { serial: 0 },
            CusanEvent::RequestComplete { serial: 0 },
            CusanEvent::CounterBump {
                counter: ctx,
                delta: 2,
            },
            CusanEvent::ApiFault {
                call: name,
                site: 7,
            },
            CusanEvent::ScheduleChoice {
                kind: ctx,
                arity: 3,
                chosen: 1,
            },
            CusanEvent::FiberDestroy { fiber: f },
        ]
    }

    #[test]
    fn roundtrip_preserves_events_and_strings() {
        let mut strings = CtxInterner::new();
        let events = sample_events(&mut strings);
        let text = record(&events.iter().map(|e| (*e, &strings)).collect::<Vec<_>>());
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.rank, 3);
        assert!(trace.tiered);
        assert_eq!(trace.budget, None);
        assert_eq!(trace.events, events);
        assert_eq!(trace.strings.label(StrId(0)), "cuda stream 0 (default)");
        assert_eq!(trace.strings.label(StrId(1)), "kernel k arg#0 (p) [write]");
    }

    #[test]
    fn binary_roundtrip_matches_text_twin() {
        let mut strings = CtxInterner::new();
        let events = sample_events(&mut strings);
        let pairs: Vec<_> = events.iter().map(|e| (*e, &strings)).collect();
        let text = record_as(TraceFormat::Text, &pairs);
        let bin = record_as(TraceFormat::Binary, &pairs);
        // String labels cost the same raw bytes in both formats and
        // dominate this tiny sample; the ≥2.5× bytes-per-event gate
        // lives in `bench_trace` where events dominate.
        assert!(
            bin.len() < text.len(),
            "binary ({}) should be smaller than text ({})",
            bin.len(),
            text.len()
        );
        let tt = Trace::from_bytes(&text).unwrap();
        let tb = Trace::from_bytes(&bin).unwrap();
        assert_eq!(tb.rank, tt.rank);
        assert_eq!(tb.tiered, tt.tiered);
        assert_eq!(tb.budget, tt.budget);
        assert_eq!(tb.events, tt.events);
        assert_eq!(tb.strings.len(), tt.strings.len());
        for i in 0..tt.strings.len() {
            assert_eq!(
                tb.strings.label(StrId(i as u32)),
                tt.strings.label(StrId(i as u32))
            );
        }
        // Replay is format-blind.
        let rt = replay(&tt);
        let rb = replay(&tb);
        assert_eq!(rb.reports, rt.reports);
        assert_eq!(rb.stats, rt.stats);
        assert_eq!(rb.counters, rt.counters);
    }

    #[test]
    fn transcode_round_trips_byte_identically() {
        let mut strings = CtxInterner::new();
        let events = sample_events(&mut strings);
        let pairs: Vec<_> = events.iter().map(|e| (*e, &strings)).collect();
        let text = record_as(TraceFormat::Text, &pairs);
        let bin = record_as(TraceFormat::Binary, &pairs);
        // Transcoding the text twin reproduces the direct binary
        // recording (both writers are canonical, and the lazy string
        // flush keeps the record interleaving identical)…
        assert_eq!(transcode(&text[..], TraceFormat::Binary).unwrap(), bin);
        // …and the full round trip gives the original text back.
        let back = transcode(&bin[..], TraceFormat::Text).unwrap();
        assert_eq!(back, text);
        // Idempotent transcodes.
        assert_eq!(transcode(&text[..], TraceFormat::Text).unwrap(), text);
        assert_eq!(transcode(&bin[..], TraceFormat::Binary).unwrap(), bin);
    }

    #[test]
    fn binary_truncation_always_fails_typed() {
        let mut strings = CtxInterner::new();
        let events = sample_events(&mut strings);
        let pairs: Vec<_> = events.iter().map(|e| (*e, &strings)).collect();
        let bin = record_as(TraceFormat::Binary, &pairs);
        for cut in 0..bin.len() {
            let err = Trace::from_bytes(&bin[..cut])
                .expect_err(&format!("prefix of {cut}/{} bytes must fail", bin.len()));
            assert!(
                err.contains("truncated") || err.contains("empty trace"),
                "prefix {cut}: unexpected error {err:?}"
            );
        }
        // Trailing garbage after the end marker fails too.
        let mut extra = bin.clone();
        extra.extend_from_slice(&[3, 11, 0]);
        let err = Trace::from_bytes(&extra).unwrap_err();
        assert!(err.contains("after the end-of-trace marker"), "got: {err}");
    }

    #[test]
    fn labels_with_specials_survive() {
        for label in ["a b\tc", "back\\slash", "new\nline", "trailing ", "é✓"] {
            let mut out = Vec::new();
            write_escaped(&mut out, label);
            let escaped = String::from_utf8(out).expect("escaping preserves UTF-8");
            assert!(!escaped.contains('\n'));
            assert_eq!(unescape(&escaped), label);
        }
        let mut strings = CtxInterner::new();
        let id = strings.intern("weird \\ label\nwith newline");
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let bytes = record_as(
                format,
                &[(
                    CusanEvent::FiberCreate {
                        fiber: FiberId::from_index(1),
                        name: id,
                    },
                    &strings,
                )],
            );
            let trace = Trace::from_bytes(&bytes).unwrap();
            assert_eq!(trace.strings.label(id), "weird \\ label\nwith newline");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("not-a-trace\n").is_err());
        assert!(Trace::parse(&format!("{TRACE_MAGIC} rank x tiered 1 budget none\n")).is_err());
        assert!(Trace::parse(&format!("{TRACE_MAGIC} rank 0 tiered 1 budget zz\n")).is_err());
        let ok_header = format!("{TRACE_MAGIC} rank 0 tiered 1 budget none\n");
        assert!(Trace::parse(&format!("{ok_header}zz 1 2\n")).is_err());
        assert!(Trace::parse(&format!("{ok_header}rr zz 8 0\n")).is_err());
        // Event referencing an undefined string id — `af` included.
        assert!(Trace::parse(&format!("{ok_header}fc 1 0\n")).is_err());
        assert!(Trace::parse(&format!("{ok_header}af 0 1\n")).is_err());
        assert!(Trace::parse(&format!("{ok_header}sc 0 2 1\n")).is_err());
        // Non-dense string table.
        assert!(Trace::parse(&format!("{ok_header}s 5 label\n")).is_err());
        // Well-formed minimal trace parses.
        let t = Trace::parse(&format!("{ok_header}s 0 f\nfc 1 0\nfd 1\n")).unwrap();
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn binary_parser_enforces_string_table_rules() {
        // Build records by hand: an event referencing an undefined id.
        let mut bytes = Vec::new();
        binio::Encoder::encode_header(&mut bytes, 0, true, None);
        let mut enc = binio::Encoder::new();
        enc.encode_event(
            &mut bytes,
            &CusanEvent::FiberCreate {
                fiber: FiberId::from_index(1),
                name: StrId(0),
            },
        );
        enc.encode_end(&mut bytes);
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("undefined string id 0"), "got: {err}");
        // Non-dense string table.
        let mut bytes = Vec::new();
        binio::Encoder::encode_header(&mut bytes, 0, true, None);
        let mut enc = binio::Encoder::new();
        enc.encode_str(&mut bytes, 5, "label");
        enc.encode_end(&mut bytes);
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("string table not dense"), "got: {err}");
    }

    #[test]
    fn parse_rejects_old_version_loudly() {
        // A v1 recording (no budget field, no `af` events) must fail with a
        // version message, not a generic header error.
        let err = Trace::parse("cusan-trace v1 rank 0 tiered 1\n").unwrap_err();
        assert!(
            err.contains("unsupported trace format version"),
            "got: {err}"
        );
        assert!(err.contains("v1"), "got: {err}");
        // Same loudness for an unknown *binary* version.
        let mut v4 = Vec::new();
        binio::Encoder::encode_header(&mut v4, 0, true, None);
        v4[7] = b'4';
        let err = Trace::from_bytes(&v4).unwrap_err();
        assert!(
            err.contains("unsupported binary trace version"),
            "got: {err}"
        );
    }

    #[test]
    fn budget_survives_roundtrip_and_shapes_replay() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let ctx = strings.intern("big write");
        let f = FiberId::from_index(1);
        let events = [
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x10000,
                len: 8 << 12,
                ctx,
            },
        ];
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let (mut sink, buf) = TraceSink::with_format(format, 0, true, Some(2));
            for ev in &events {
                sink.on_event(ev, &strings);
            }
            sink.seal();
            let bytes = buf.borrow().clone();
            if format == TraceFormat::Text {
                let text = std::str::from_utf8(&bytes).unwrap();
                assert!(text.starts_with(&format!("{TRACE_MAGIC} rank 0 tiered 1 budget 2\n")));
            }
            let trace = Trace::from_bytes(&bytes).unwrap();
            assert_eq!(trace.budget, Some(2));
            // Replay applies the recorded budget, reproducing the
            // degradation counters of the capped live run.
            let out = replay(&trace);
            assert_eq!(out.stats.dropped_annotations, 6);
        }
    }

    #[test]
    fn streaming_reader_matches_whole_file_parse() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let ctx = strings.intern("kernel write");
        let f = FiberId::from_index(1);
        let events = [
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx,
            },
        ];
        let text = record(&events.iter().map(|e| (*e, &strings)).collect::<Vec<_>>());

        // Pull iteration sees string entries then events, in file order.
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(
            *reader.header(),
            TraceHeader {
                rank: 3,
                tiered: true,
                budget: None
            }
        );
        assert_eq!(reader.format(), TraceFormat::Text);
        let recs: Vec<TraceRecord> = reader.by_ref().map(Result::unwrap).collect();
        assert_eq!(recs.len(), 5);
        match &recs[0] {
            TraceRecord::Str { id, label } => {
                assert_eq!(*id, name);
                assert_eq!(&**label, "cuda stream 0");
            }
            other => panic!("expected string entry, got {other:?}"),
        }
        assert_eq!(recs[2], TraceRecord::Event(events[0]));

        // The binary twin yields the identical record stream.
        let bin = transcode(text.as_bytes(), TraceFormat::Binary).unwrap();
        let mut breader = TraceReader::new(&bin[..]).unwrap();
        assert_eq!(breader.format(), TraceFormat::Binary);
        let brecs: Vec<TraceRecord> = breader.by_ref().map(Result::unwrap).collect();
        assert_eq!(brecs, recs);

        // from_reader (and therefore parse) agrees with the iterator.
        let trace = Trace::from_reader(text.as_bytes()).unwrap();
        assert_eq!(trace.events, events);
        assert_eq!(trace.strings.len(), 2);

        // Streaming replay agrees with materialized replay, per format.
        let solo = replay(&trace);
        for bytes in [text.as_bytes(), &bin[..]] {
            let streamed = replay_stream(bytes).unwrap();
            assert_eq!(streamed.reports, solo.reports);
            assert_eq!(streamed.stats, solo.stats);
            assert_eq!(streamed.counters, solo.counters);
        }
    }

    #[test]
    fn push_parser_survives_arbitrary_chunking_and_spill() {
        let mut strings = CtxInterner::new();
        let events = sample_events(&mut strings);
        let pairs: Vec<_> = events.iter().map(|e| (*e, &strings)).collect();
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let bytes = record_as(format, &pairs);
            let whole = Trace::from_bytes(&bytes).unwrap();
            for chunk in [1usize, 2, 3, 7, 16] {
                let mut parser = TracePushParser::new();
                let mut items = Vec::new();
                let mut fed = 0;
                for c in bytes.chunks(chunk) {
                    parser.feed(c);
                    fed += c.len();
                    // Spill/restore mid-stream at every chunk boundary:
                    // the restored parser must continue identically.
                    if fed <= bytes.len() / 2 {
                        let mut w = SnapshotWriter::new();
                        parser.spill_to(&mut w);
                        let blob = w.into_bytes();
                        let mut r = SnapshotReader::new(&blob);
                        parser = TracePushParser::restore_from(&mut r).unwrap();
                    }
                    while let Some(item) = parser.poll().unwrap() {
                        items.push(item);
                    }
                }
                parser.close();
                while let Some(item) = parser.poll().unwrap() {
                    items.push(item);
                }
                let mut got_events = Vec::new();
                let mut header = None;
                for item in items {
                    match item {
                        TraceItem::Header(h) => header = Some(h),
                        TraceItem::Record(TraceRecord::Event(ev)) => got_events.push(ev),
                        TraceItem::Record(TraceRecord::Str { .. }) => {}
                    }
                }
                assert_eq!(header.unwrap().rank, whole.rank, "{format:?} chunk {chunk}");
                assert_eq!(got_events, whole.events, "{format:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn incremental_parser_keeps_line_numbers() {
        let mut p = TraceLineParser::new();
        assert!(p.parse_line("s 0 f").unwrap().is_some());
        assert!(p.parse_line("").unwrap().is_none());
        let err = p.parse_line("rr zz 8 0").unwrap_err();
        // Header is line 1, so the third body line is file line 4.
        assert!(err.starts_with("trace line 4:"), "got: {err}");
    }

    #[test]
    fn replay_reproduces_race() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let cw = strings.intern("kernel write");
        let cr = strings.intern("host read");
        let f = FiberId::from_index(1);
        let events = [
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx: cw,
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::ReadRange {
                addr: 0x1000,
                len: 64,
                ctx: cr,
            },
        ];
        let text = record(&events.iter().map(|e| (*e, &strings)).collect::<Vec<_>>());
        let trace = Trace::parse(&text).unwrap();
        let out = replay(&trace);
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].previous.fiber, "cuda stream 0");
        assert_eq!(out.stats.read_range_calls, 1);
        assert_eq!(out.counters.read_range_calls, 1);
        assert_eq!(out.counters.fiber_switches, 2);
    }
}
