//! Deterministic trace record/replay for the event pipeline.
//!
//! [`TraceSink`] serializes one rank's event stream to a compact,
//! self-describing text format; [`Trace::parse`] reads it back; and
//! [`replay`] re-drives a parsed trace through a fresh [`TsanRuntime`] via
//! the same [`CheckerSink`] apply path used live — no apps, no simulators.
//! A replayed trace therefore reproduces the live run's race reports and
//! event counters exactly (asserted by `crates/apps/tests/trace_replay.rs`
//! across the whole testsuite).
//!
//! # Format
//!
//! Line-oriented UTF-8. The first line is the header:
//!
//! ```text
//! cusan-trace v2 rank <rank> tiered <0|1> budget <pages|none>
//! ```
//!
//! `tiered` and `budget` record the shadow-memory configuration so replay
//! reproduces the live shadow-tier counters *and* any best-effort
//! degradation (`dropped_annotations`) of a budget-capped run. The
//! version in the magic is bumped whenever the format changes shape (v1 →
//! v2 added the budget field and the `af` fault event); a version
//! mismatch fails parsing loudly instead of silently misreading old
//! recordings. Every other line is either a string-table entry — `s <id>
//! <label>` with `\` and newline escaped, ids dense and ascending, always
//! emitted before first use — or an event:
//!
//! | line | event |
//! |---|---|
//! | `fc <fiber> <name>` | fiber create |
//! | `fy <fiber>` / `fs <fiber>` | fiber switch (sync / no-sync) |
//! | `fd <fiber>` | fiber destroy |
//! | `hb <key>` / `ha <key>` | happens-before / happens-after (key hex) |
//! | `rr <addr> <len> <ctx>` / `wr …` | read / write range (addr hex) |
//! | `al <addr> <bytes> <kind>` | alloc marker (addr hex) |
//! | `fr <addr> <bytes>` | free marker (addr hex) |
//! | `qb <serial>` / `qc <serial>` | MPI request begin / complete |
//! | `cb <counter> <delta>` | named counter bump |
//! | `af <call> <site>` | injected API fault |
//!
//! All writers format identically, so two recordings of the same
//! deterministic run are byte-identical (see the Jacobi determinism test).

use crate::event::{CtxInterner, CusanEvent, EventCounters, EventSink, StrId};
use crate::session::{CheckSession, SessionOptions};
use std::cell::RefCell;
use std::io::BufRead;
use std::rc::Rc;
use std::sync::Arc;
use tsan_rt::{FiberId, RaceReport, SyncKey, TsanStats};

/// Magic prefix of a trace header line. The version is part of the
/// magic: readers reject any other version with a clear message.
pub const TRACE_MAGIC: &str = "cusan-trace v2";

/// Version-independent prefix, used to tell "old/new version" apart from
/// "not a trace at all" in error messages.
const TRACE_FAMILY: &str = "cusan-trace v";

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A sink that serializes the event stream into a shared text buffer.
///
/// String-table entries are flushed lazily: before writing an event line,
/// every interner entry not yet written is emitted, so any id an event
/// references is defined earlier in the file.
pub struct TraceSink {
    buf: Rc<RefCell<String>>,
    written: usize,
}

impl TraceSink {
    /// Create a sink whose header records `rank` and the shadow
    /// configuration (tiering + page budget). Returns the sink and the
    /// shared buffer handle the caller reads after the run.
    pub fn new(
        rank: usize,
        tiered: bool,
        budget: Option<usize>,
    ) -> (TraceSink, Rc<RefCell<String>>) {
        let budget = budget.map_or_else(|| "none".to_string(), |b| b.to_string());
        let buf = Rc::new(RefCell::new(format!(
            "{TRACE_MAGIC} rank {rank} tiered {} budget {budget}\n",
            u8::from(tiered)
        )));
        (
            TraceSink {
                buf: Rc::clone(&buf),
                written: 0,
            },
            buf,
        )
    }
}

impl EventSink for TraceSink {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_event(&mut self, ev: &CusanEvent, strings: &CtxInterner) {
        use std::fmt::Write;
        let mut buf = self.buf.borrow_mut();
        while self.written < strings.len() {
            let id = StrId(self.written as u32);
            writeln!(buf, "s {} {}", id.0, escape(strings.label(id))).unwrap();
            self.written += 1;
        }
        match *ev {
            CusanEvent::FiberCreate { fiber, name } => {
                writeln!(buf, "fc {} {}", fiber.index(), name.0)
            }
            CusanEvent::FiberSwitch { fiber, sync: true } => writeln!(buf, "fy {}", fiber.index()),
            CusanEvent::FiberSwitch { fiber, sync: false } => writeln!(buf, "fs {}", fiber.index()),
            CusanEvent::FiberDestroy { fiber } => writeln!(buf, "fd {}", fiber.index()),
            CusanEvent::HappensBefore { key } => writeln!(buf, "hb {:x}", key.0),
            CusanEvent::HappensAfter { key } => writeln!(buf, "ha {:x}", key.0),
            CusanEvent::ReadRange { addr, len, ctx } => {
                writeln!(buf, "rr {addr:x} {len} {}", ctx.0)
            }
            CusanEvent::WriteRange { addr, len, ctx } => {
                writeln!(buf, "wr {addr:x} {len} {}", ctx.0)
            }
            CusanEvent::Alloc { addr, bytes, kind } => {
                writeln!(buf, "al {addr:x} {bytes} {}", kind.0)
            }
            CusanEvent::Free { addr, bytes } => writeln!(buf, "fr {addr:x} {bytes}"),
            CusanEvent::RequestBegin { serial } => writeln!(buf, "qb {serial}"),
            CusanEvent::RequestComplete { serial } => writeln!(buf, "qc {serial}"),
            CusanEvent::CounterBump { counter, delta } => {
                writeln!(buf, "cb {} {delta}", counter.0)
            }
            CusanEvent::ApiFault { call, site } => writeln!(buf, "af {} {site}", call.0),
        }
        .unwrap();
    }
}

/// A parsed trace: one rank's complete event stream plus its string table.
#[derive(Debug)]
pub struct Trace {
    /// Rank the trace was recorded on (names the replay host fiber).
    pub rank: usize,
    /// Shadow-tier configuration of the recording run.
    pub tiered: bool,
    /// Shadow page budget of the recording run (`None` = unlimited).
    pub budget: Option<usize>,
    /// The string table.
    pub strings: CtxInterner,
    /// The events, in emission order.
    pub events: Vec<CusanEvent>,
}

fn parse_err(lineno: usize, msg: impl Into<String>) -> String {
    format!("trace line {}: {}", lineno + 1, msg.into())
}

/// The parsed header line of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Rank the trace was recorded on.
    pub rank: usize,
    /// Shadow-tier configuration of the recording run.
    pub tiered: bool,
    /// Shadow page budget of the recording run (`None` = unlimited).
    pub budget: Option<usize>,
}

impl TraceHeader {
    /// Parse the header line (without its trailing newline).
    pub fn parse(header: &str) -> Result<TraceHeader, String> {
        let rest = header.strip_prefix(TRACE_MAGIC).ok_or_else(|| {
            if header.starts_with(TRACE_FAMILY) {
                format!(
                    "unsupported trace format version: got {:?}, this reader only \
                     understands `{TRACE_MAGIC}` (re-record the trace)",
                    header
                        .split_whitespace()
                        .take(2)
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            } else {
                format!("bad header {header:?} (expected `{TRACE_MAGIC} …`)")
            }
        })?;
        let hf: Vec<&str> = rest.split_whitespace().collect();
        match hf.as_slice() {
            ["rank", r, "tiered", t, "budget", b] => Ok(TraceHeader {
                rank: r.parse::<usize>().map_err(|e| format!("bad rank: {e}"))?,
                tiered: match *t {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad tiered flag {other:?}")),
                },
                budget: match *b {
                    "none" => None,
                    pages => Some(
                        pages
                            .parse::<usize>()
                            .map_err(|e| format!("bad budget: {e}"))?,
                    ),
                },
            }),
            _ => Err(format!("bad header fields {rest:?}")),
        }
    }
}

/// One parsed body line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A string-table entry, already interned into the parser's table
    /// (the `Arc` handle lets consumers share the label bytes instead of
    /// re-copying them — the serve path's cross-session dedup).
    Str {
        /// The entry's dense id.
        id: StrId,
        /// The unescaped label.
        label: Arc<str>,
    },
    /// An event line.
    Event(CusanEvent),
}

/// Incremental (push-mode) parser for trace body lines.
///
/// Feed it complete lines one at a time — from a file, a socket shard
/// stream, or anywhere else — and it maintains the string table, the
/// density/defined-id validation, and line numbers for error messages.
/// [`TraceReader`] wraps it for pull-mode iteration over a [`BufRead`];
/// `cusan-serve` drives it directly from reassembled shard chunks.
#[derive(Debug, Default)]
pub struct TraceLineParser {
    strings: CtxInterner,
    /// Body lines consumed so far (the header is line 0, so the first
    /// body line is 1 — matching the whole-file parser's numbering).
    lineno: usize,
}

impl TraceLineParser {
    /// Parser with an empty string table, positioned after the header.
    pub fn new() -> Self {
        Self::default()
    }

    /// The string table accumulated so far.
    pub fn strings(&self) -> &CtxInterner {
        &self.strings
    }

    /// Consume the parser into its string table.
    pub fn into_strings(self) -> CtxInterner {
        self.strings
    }

    /// Body lines consumed so far (the serve spill format records this
    /// so a restored parser keeps numbering errors like the original).
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Rebuild a parser mid-stream from a snapshotted string table and
    /// line position — the inverse of [`Self::into_strings`] +
    /// [`Self::lineno`], used when a spilled serve session is restored.
    pub fn from_parts(strings: CtxInterner, lineno: usize) -> Self {
        TraceLineParser { strings, lineno }
    }

    /// Parse one body line (without its trailing newline). Returns
    /// `Ok(None)` for empty lines.
    pub fn parse_line(&mut self, line: &str) -> Result<Option<TraceRecord>, String> {
        self.lineno += 1;
        let lineno = self.lineno;
        if line.is_empty() {
            return Ok(None);
        }
        let (kind, body) = line
            .split_once(' ')
            .ok_or_else(|| parse_err(lineno, format!("malformed line {line:?}")))?;
        let fields: Vec<&str> = body.split(' ').collect();
        let dec = |i: usize| -> Result<u64, String> {
            fields
                .get(i)
                .ok_or_else(|| parse_err(lineno, "missing field"))?
                .parse::<u64>()
                .map_err(|e| parse_err(lineno, format!("bad number: {e}")))
        };
        let hex = |i: usize| -> Result<u64, String> {
            u64::from_str_radix(
                fields
                    .get(i)
                    .ok_or_else(|| parse_err(lineno, "missing field"))?,
                16,
            )
            .map_err(|e| parse_err(lineno, format!("bad hex number: {e}")))
        };
        let fib =
            |i: usize| -> Result<FiberId, String> { Ok(FiberId::from_index(dec(i)? as usize)) };
        let sid = |i: usize| -> Result<StrId, String> { Ok(StrId(dec(i)? as u32)) };
        let ev = match kind {
            "s" => {
                // `s <id> <label>`: the label is everything after the id,
                // spaces included.
                let (id, label) = body
                    .split_once(' ')
                    .ok_or_else(|| parse_err(lineno, "string entry without label"))?;
                let id: u32 = id
                    .parse()
                    .map_err(|e| parse_err(lineno, format!("bad string id: {e}")))?;
                let interned = self.strings.intern(&unescape(label));
                if interned.0 != id {
                    return Err(parse_err(
                        lineno,
                        format!(
                            "string table not dense: got id {id}, expected {}",
                            interned.0
                        ),
                    ));
                }
                return Ok(Some(TraceRecord::Str {
                    id: interned,
                    label: self.strings.shared_label(interned).expect("just interned"),
                }));
            }
            "fc" => CusanEvent::FiberCreate {
                fiber: fib(0)?,
                name: sid(1)?,
            },
            "fy" => CusanEvent::FiberSwitch {
                fiber: fib(0)?,
                sync: true,
            },
            "fs" => CusanEvent::FiberSwitch {
                fiber: fib(0)?,
                sync: false,
            },
            "fd" => CusanEvent::FiberDestroy { fiber: fib(0)? },
            "hb" => CusanEvent::HappensBefore {
                key: SyncKey(hex(0)?),
            },
            "ha" => CusanEvent::HappensAfter {
                key: SyncKey(hex(0)?),
            },
            "rr" => CusanEvent::ReadRange {
                addr: hex(0)?,
                len: dec(1)?,
                ctx: sid(2)?,
            },
            "wr" => CusanEvent::WriteRange {
                addr: hex(0)?,
                len: dec(1)?,
                ctx: sid(2)?,
            },
            "al" => CusanEvent::Alloc {
                addr: hex(0)?,
                bytes: dec(1)?,
                kind: sid(2)?,
            },
            "fr" => CusanEvent::Free {
                addr: hex(0)?,
                bytes: dec(1)?,
            },
            "qb" => CusanEvent::RequestBegin { serial: dec(0)? },
            "qc" => CusanEvent::RequestComplete { serial: dec(0)? },
            "cb" => CusanEvent::CounterBump {
                counter: sid(0)?,
                delta: dec(1)?,
            },
            "af" => CusanEvent::ApiFault {
                call: sid(0)?,
                site: dec(1)?,
            },
            other => return Err(parse_err(lineno, format!("unknown event kind {other:?}"))),
        };
        // Events must not reference string ids the table hasn't defined.
        let used = match ev {
            CusanEvent::FiberCreate { name, .. } => Some(name),
            CusanEvent::ReadRange { ctx, .. } | CusanEvent::WriteRange { ctx, .. } => Some(ctx),
            CusanEvent::Alloc { kind, .. } => Some(kind),
            CusanEvent::CounterBump { counter, .. } => Some(counter),
            CusanEvent::ApiFault { call, .. } => Some(call),
            _ => None,
        };
        if let Some(id) = used {
            if id.0 as usize >= self.strings.len() {
                return Err(parse_err(lineno, format!("undefined string id {}", id.0)));
            }
        }
        Ok(Some(TraceRecord::Event(ev)))
    }
}

/// Pull-mode streaming reader: iterates [`TraceRecord`]s straight off a
/// [`BufRead`] source without materializing the trace. One line of
/// buffer is the only per-trace allocation that scales with input size.
pub struct TraceReader<R> {
    input: R,
    parser: TraceLineParser,
    header: TraceHeader,
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    /// Read and parse the header; subsequent records come from
    /// [`Iterator::next`].
    pub fn new(mut input: R) -> Result<Self, String> {
        let mut line = String::new();
        match input.read_line(&mut line) {
            Err(e) => return Err(format!("trace read error: {e}")),
            Ok(0) => return Err("empty trace".to_string()),
            Ok(_) => {}
        }
        let header = TraceHeader::parse(line.trim_end_matches('\n'))?;
        Ok(TraceReader {
            input,
            parser: TraceLineParser::new(),
            header,
            line,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The string table accumulated so far.
    pub fn strings(&self) -> &CtxInterner {
        self.parser.strings()
    }

    /// Consume the reader into its string table.
    pub fn into_strings(self) -> CtxInterner {
        self.parser.into_strings()
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, String>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.input.read_line(&mut self.line) {
                Err(e) => return Some(Err(format!("trace read error: {e}"))),
                Ok(0) => return None,
                Ok(_) => {}
            }
            match self.parser.parse_line(self.line.trim_end_matches('\n')) {
                Ok(None) => continue,
                Ok(Some(rec)) => return Some(Ok(rec)),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

impl Trace {
    /// Parse the text format produced by [`TraceSink`]. Wrapper over the
    /// streaming [`Trace::from_reader`].
    pub fn parse(text: &str) -> Result<Trace, String> {
        Self::from_reader(text.as_bytes())
    }

    /// Parse a whole trace from any buffered byte source.
    pub fn from_reader<R: BufRead>(input: R) -> Result<Trace, String> {
        let mut reader = TraceReader::new(input)?;
        let mut events = Vec::new();
        for rec in &mut reader {
            if let TraceRecord::Event(ev) = rec? {
                events.push(ev);
            }
        }
        let TraceHeader {
            rank,
            tiered,
            budget,
        } = *reader.header();
        Ok(Trace {
            rank,
            tiered,
            budget,
            strings: reader.into_strings(),
            events,
        })
    }
}

/// Result of replaying a trace offline.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Retained race reports, identical to the live run's.
    pub reports: Vec<RaceReport>,
    /// Detector counters, identical to the live run's.
    pub stats: TsanStats,
    /// Pipeline counters folded from the replayed events.
    pub counters: EventCounters,
}

/// Re-drive a recorded trace through a fresh [`CheckSession`].
///
/// Uses the same apply path as the live run ([`CheckSession::apply`]),
/// with the recorded rank's host-fiber name and shadow configuration, so
/// reports (fiber and context labels included), [`TsanStats`], and
/// [`EventCounters`] all reproduce exactly. (The arena is a pure
/// allocation strategy, so traces never record it; the session reads the
/// same frozen env knob the live run's ToolCtx uses, keeping live and
/// replayed stats — `arena_*` fields included — identical within one
/// process.)
pub fn replay(trace: &Trace) -> ReplayOutcome {
    let mut session = CheckSession::new(&SessionOptions::for_trace(
        trace.rank,
        trace.tiered,
        trace.budget,
    ));
    for i in 0..trace.strings.len() {
        let label = trace
            .strings
            .shared_label(StrId(i as u32))
            .expect("string table is dense");
        session.intern_shared(&label);
    }
    for ev in &trace.events {
        session.apply(ev);
    }
    let summary = session.into_summary();
    ReplayOutcome {
        reports: summary.reports,
        stats: summary.stats,
        counters: summary.counters,
    }
}

/// Streaming replay: drive records from a [`BufRead`] source straight
/// into a session without materializing a [`Trace`]. Equivalent to
/// `replay(&Trace::from_reader(input)?)` with O(1) memory in the trace
/// length.
pub fn replay_stream<R: BufRead>(input: R) -> Result<ReplayOutcome, String> {
    let mut reader = TraceReader::new(input)?;
    let h = *reader.header();
    let mut session = CheckSession::new(&SessionOptions::for_trace(h.rank, h.tiered, h.budget));
    for rec in &mut reader {
        match rec? {
            TraceRecord::Str { label, .. } => {
                session.intern_shared(&label);
            }
            TraceRecord::Event(ev) => session.apply(&ev),
        }
    }
    let summary = session.into_summary();
    Ok(ReplayOutcome {
        reports: summary.reports,
        stats: summary.stats,
        counters: summary.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(events: &[(CusanEvent, &CtxInterner)]) -> String {
        let (mut sink, buf) = TraceSink::new(3, true, None);
        for (ev, strings) in events {
            sink.on_event(ev, strings);
        }
        let out = buf.borrow().clone();
        out
    }

    #[test]
    fn roundtrip_preserves_events_and_strings() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0 (default)");
        let ctx = strings.intern("kernel k arg#0 (p) [write]");
        let f = FiberId::from_index(1);
        let events = vec![
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x4000,
                len: 8192,
                ctx,
            },
            CusanEvent::HappensBefore {
                key: SyncKey(0x0100_0000_0000),
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::HappensAfter {
                key: SyncKey(0x0100_0000_0000),
            },
            CusanEvent::Alloc {
                addr: 0x4000,
                bytes: 8192,
                kind: name,
            },
            CusanEvent::Free {
                addr: 0x4000,
                bytes: 8192,
            },
            CusanEvent::RequestBegin { serial: 0 },
            CusanEvent::RequestComplete { serial: 0 },
            CusanEvent::CounterBump {
                counter: ctx,
                delta: 2,
            },
            CusanEvent::ApiFault {
                call: name,
                site: 7,
            },
            CusanEvent::FiberDestroy { fiber: f },
        ];
        let text = record(&events.iter().map(|e| (*e, &strings)).collect::<Vec<_>>());
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.rank, 3);
        assert!(trace.tiered);
        assert_eq!(trace.budget, None);
        assert_eq!(trace.events, events);
        assert_eq!(trace.strings.label(name), "cuda stream 0 (default)");
        assert_eq!(trace.strings.label(ctx), "kernel k arg#0 (p) [write]");
    }

    #[test]
    fn labels_with_specials_survive() {
        for label in ["a b\tc", "back\\slash", "new\nline", "trailing "] {
            assert_eq!(unescape(&escape(label)), label);
        }
        let mut strings = CtxInterner::new();
        let id = strings.intern("weird \\ label\nwith newline");
        let text = record(&[(
            CusanEvent::FiberCreate {
                fiber: FiberId::from_index(1),
                name: id,
            },
            &strings,
        )]);
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.strings.label(id), "weird \\ label\nwith newline");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("not-a-trace\n").is_err());
        assert!(Trace::parse(&format!("{TRACE_MAGIC} rank x tiered 1 budget none\n")).is_err());
        assert!(Trace::parse(&format!("{TRACE_MAGIC} rank 0 tiered 1 budget zz\n")).is_err());
        let ok_header = format!("{TRACE_MAGIC} rank 0 tiered 1 budget none\n");
        assert!(Trace::parse(&format!("{ok_header}zz 1 2\n")).is_err());
        assert!(Trace::parse(&format!("{ok_header}rr zz 8 0\n")).is_err());
        // Event referencing an undefined string id — `af` included.
        assert!(Trace::parse(&format!("{ok_header}fc 1 0\n")).is_err());
        assert!(Trace::parse(&format!("{ok_header}af 0 1\n")).is_err());
        // Non-dense string table.
        assert!(Trace::parse(&format!("{ok_header}s 5 label\n")).is_err());
        // Well-formed minimal trace parses.
        let t = Trace::parse(&format!("{ok_header}s 0 f\nfc 1 0\nfd 1\n")).unwrap();
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn parse_rejects_old_version_loudly() {
        // A v1 recording (no budget field, no `af` events) must fail with a
        // version message, not a generic header error.
        let err = Trace::parse("cusan-trace v1 rank 0 tiered 1\n").unwrap_err();
        assert!(
            err.contains("unsupported trace format version"),
            "got: {err}"
        );
        assert!(err.contains("v1"), "got: {err}");
    }

    #[test]
    fn budget_survives_roundtrip_and_shapes_replay() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let ctx = strings.intern("big write");
        let f = FiberId::from_index(1);
        let events = [
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x10000,
                len: 8 << 12,
                ctx,
            },
        ];
        let (mut sink, buf) = TraceSink::new(0, true, Some(2));
        for ev in &events {
            sink.on_event(ev, &strings);
        }
        let text = buf.borrow().clone();
        assert!(text.starts_with(&format!("{TRACE_MAGIC} rank 0 tiered 1 budget 2\n")));
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.budget, Some(2));
        // Replay applies the recorded budget, reproducing the degradation
        // counters of the capped live run.
        let out = replay(&trace);
        assert_eq!(out.stats.dropped_annotations, 6);
    }

    #[test]
    fn streaming_reader_matches_whole_file_parse() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let ctx = strings.intern("kernel write");
        let f = FiberId::from_index(1);
        let events = [
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx,
            },
        ];
        let text = record(&events.iter().map(|e| (*e, &strings)).collect::<Vec<_>>());

        // Pull iteration sees string entries then events, in file order.
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(
            *reader.header(),
            TraceHeader {
                rank: 3,
                tiered: true,
                budget: None
            }
        );
        let recs: Vec<TraceRecord> = reader.by_ref().map(Result::unwrap).collect();
        assert_eq!(recs.len(), 5);
        match &recs[0] {
            TraceRecord::Str { id, label } => {
                assert_eq!(*id, name);
                assert_eq!(&**label, "cuda stream 0");
            }
            other => panic!("expected string entry, got {other:?}"),
        }
        assert_eq!(recs[2], TraceRecord::Event(events[0]));

        // from_reader (and therefore parse) agrees with the iterator.
        let trace = Trace::from_reader(text.as_bytes()).unwrap();
        assert_eq!(trace.events, events);
        assert_eq!(trace.strings.len(), 2);

        // Streaming replay agrees with materialized replay.
        let solo = replay(&trace);
        let streamed = replay_stream(text.as_bytes()).unwrap();
        assert_eq!(streamed.reports, solo.reports);
        assert_eq!(streamed.stats, solo.stats);
        assert_eq!(streamed.counters, solo.counters);
    }

    #[test]
    fn incremental_parser_keeps_line_numbers() {
        let mut p = TraceLineParser::new();
        assert!(p.parse_line("s 0 f").unwrap().is_some());
        assert!(p.parse_line("").unwrap().is_none());
        let err = p.parse_line("rr zz 8 0").unwrap_err();
        // Header is line 1, so the third body line is file line 4.
        assert!(err.starts_with("trace line 4:"), "got: {err}");
    }

    #[test]
    fn replay_reproduces_race() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let cw = strings.intern("kernel write");
        let cr = strings.intern("host read");
        let f = FiberId::from_index(1);
        let events = [
            CusanEvent::FiberCreate { fiber: f, name },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx: cw,
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::ReadRange {
                addr: 0x1000,
                len: 64,
                ctx: cr,
            },
        ];
        let text = record(&events.iter().map(|e| (*e, &strings)).collect::<Vec<_>>());
        let trace = Trace::parse(&text).unwrap();
        let out = replay(&trace);
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].previous.fiber, "cuda stream 0");
        assert_eq!(out.stats.read_range_calls, 1);
        assert_eq!(out.counters.read_range_calls, 1);
        assert_eq!(out.counters.fiber_switches, 2);
    }
}
