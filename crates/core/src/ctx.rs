//! Per-rank tool context: configuration + detector + type runtime.
//!
//! One [`ToolCtx`] exists per simulated MPI rank (matching the paper's
//! one-TSan-per-process model) and is shared by the checked CUDA API
//! ([`crate::CusanCuda`]) and the MUST layer via `Rc`.
//!
//! It also carries the **host-access instrumentation**: the real TSan
//! compiler pass instruments every host load/store of user code; in
//! `cusan-rs` applications perform host accesses to simulated memory
//! through the `host_*` helpers here, which annotate the detector exactly
//! when the `tsan` flag is active.

use crate::config::ToolConfig;
use sim_mem::{AddressSpace, MemError, Pod, Ptr};
use std::cell::{Cell, RefCell};
use tsan_rt::{CtxId, RaceReport, TsanRuntime, TsanStats};
use typeart_rt::TypeartRuntime;

/// Shared per-rank tool state. Not `Send`: each rank thread owns its own.
pub struct ToolCtx {
    /// Active instrumentation configuration.
    pub config: ToolConfig,
    /// The race detector (host fiber = this rank's thread).
    pub tsan: RefCell<TsanRuntime>,
    /// Allocation-type tracking.
    pub typeart: RefCell<TypeartRuntime>,
    rank: usize,
    request_serial: Cell<u64>,
}

impl ToolCtx {
    /// Create the context for one rank. `CUSAN_SHADOW_TIERED=0` (or
    /// `false`/`off`) in the environment overrides `config.shadow_tiered`
    /// to force the flat shadow walk; `=1` forces tiering on. Any other
    /// value (or unset) leaves the config untouched.
    pub fn new(rank: usize, mut config: ToolConfig) -> Self {
        match std::env::var("CUSAN_SHADOW_TIERED").as_deref() {
            Ok("0") | Ok("false") | Ok("off") => config.shadow_tiered = false,
            Ok("1") | Ok("true") | Ok("on") => config.shadow_tiered = true,
            _ => {}
        }
        ToolCtx {
            config,
            tsan: RefCell::new(TsanRuntime::with_shadow_tiering(
                &format!("host (rank {rank})"),
                config.shadow_tiered,
            )),
            typeart: RefCell::new(TypeartRuntime::new()),
            rank,
            request_serial: Cell::new(0),
        }
    }

    /// The rank this context belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Allocate a fresh serial for a non-blocking MPI request fiber.
    pub fn next_request_serial(&self) -> u64 {
        let s = self.request_serial.get();
        self.request_serial.set(s + 1);
        s
    }

    // ---- host-access instrumentation ---------------------------------------

    /// Annotate a host-side read (no data movement).
    pub fn annotate_host_read(&self, ptr: Ptr, bytes: u64, label: &str) {
        if self.config.tsan {
            let mut t = self.tsan.borrow_mut();
            let ctx = t.intern_ctx(label);
            t.read_range(ptr.addr(), bytes, ctx);
        }
    }

    /// Annotate a host-side write (no data movement).
    pub fn annotate_host_write(&self, ptr: Ptr, bytes: u64, label: &str) {
        if self.config.tsan {
            let mut t = self.tsan.borrow_mut();
            let ctx = t.intern_ctx(label);
            t.write_range(ptr.addr(), bytes, ctx);
        }
    }

    /// Instrumented host read of `n` elements.
    pub fn host_read_slice<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        n: u64,
        label: &str,
    ) -> Result<Vec<T>, MemError> {
        self.annotate_host_read(ptr, n * T::SIZE as u64, label);
        space.read_vec::<T>(ptr, n)
    }

    /// Instrumented host write of a slice.
    pub fn host_write_slice<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        data: &[T],
        label: &str,
    ) -> Result<(), MemError> {
        self.annotate_host_write(ptr, (data.len() * T::SIZE) as u64, label);
        space.write_slice_data::<T>(ptr, data)
    }

    /// Instrumented host read of one element.
    pub fn host_read_at<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        label: &str,
    ) -> Result<T, MemError> {
        self.annotate_host_read(ptr, T::SIZE as u64, label);
        space.read_at::<T>(ptr)
    }

    /// Instrumented host write of one element.
    pub fn host_write_at<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        value: T,
        label: &str,
    ) -> Result<(), MemError> {
        self.annotate_host_write(ptr, T::SIZE as u64, label);
        space.write_at::<T>(ptr, value)
    }

    /// Intern an access-context label on the detector.
    pub fn intern_ctx(&self, label: &str) -> CtxId {
        self.tsan.borrow_mut().intern_ctx(label)
    }

    /// Install suppressions from a TSan-style suppression file
    /// (`race:<substring>` lines; see the paper's artifact description —
    /// cluster-specific suppression lists avoid false positives from
    /// uninstrumented libraries).
    pub fn load_suppressions(&self, text: &str) -> Result<usize, String> {
        let sup = tsan_rt::report::Suppressions::parse(text)?;
        let n = sup.len();
        let mut t = self.tsan.borrow_mut();
        for p in sup.patterns() {
            t.add_suppression(p);
        }
        Ok(n)
    }

    // ---- results ------------------------------------------------------------

    /// Race reports collected so far.
    pub fn race_reports(&self) -> Vec<RaceReport> {
        self.tsan.borrow().reports().to_vec()
    }

    /// Number of races reported.
    pub fn race_count(&self) -> u64 {
        self.tsan.borrow().race_count()
    }

    /// Detector counters (Table I TSan rows).
    pub fn tsan_stats(&self) -> TsanStats {
        self.tsan.borrow().stats()
    }

    /// Approximate tool heap usage: detector shadow/clocks + TypeART
    /// tables. Feeds the Fig. 11 reproduction.
    pub fn tool_memory_bytes(&self) -> u64 {
        self.tsan.borrow().memory_bytes() + self.typeart.borrow().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Flavor;
    use sim_mem::MemKind;

    #[test]
    fn host_access_annotates_only_when_tsan_on() {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::HostPageable, 64).unwrap();

        let off = ToolCtx::new(0, Flavor::Vanilla.config());
        off.host_write_at::<f64>(&space, p, 1.0, "w").unwrap();
        assert_eq!(off.tsan_stats().write_range_calls, 0);

        let on = ToolCtx::new(0, Flavor::Tsan.config());
        on.host_write_at::<f64>(&space, p, 2.0, "w").unwrap();
        let v: f64 = on.host_read_at(&space, p, "r").unwrap();
        assert_eq!(v, 2.0);
        let s = on.tsan_stats();
        assert_eq!(s.write_range_calls, 1);
        assert_eq!(s.read_range_calls, 1);
        assert_eq!(s.write_bytes, 8);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::Managed, 64).unwrap();
        let ctx = ToolCtx::new(1, Flavor::Tsan.config());
        ctx.host_write_slice::<f64>(&space, p, &[1.0, 2.0, 3.0], "init")
            .unwrap();
        let v = ctx.host_read_slice::<f64>(&space, p, 3, "check").unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(ctx.rank(), 1);
    }

    #[test]
    fn request_serials_are_unique() {
        let ctx = ToolCtx::new(0, Flavor::MustCusan.config());
        assert_eq!(ctx.next_request_serial(), 0);
        assert_eq!(ctx.next_request_serial(), 1);
        assert_eq!(ctx.next_request_serial(), 2);
    }

    #[test]
    fn tool_memory_nonzero_after_tracking() {
        let ctx = ToolCtx::new(0, Flavor::Cusan.config());
        ctx.annotate_host_write(Ptr(0x4000), 4096, "w");
        assert!(ctx.tool_memory_bytes() > 0);
    }

    #[test]
    fn shadow_tiered_env_knob_overrides_config() {
        // Serialize with any other env-reading test via the var itself;
        // tests in this crate run single-threaded per process anyway.
        std::env::set_var("CUSAN_SHADOW_TIERED", "0");
        let off = ToolCtx::new(0, Flavor::Cusan.config());
        assert!(!off.config.shadow_tiered);
        assert!(!off.tsan.borrow().shadow_tiering_enabled());
        std::env::set_var("CUSAN_SHADOW_TIERED", "1");
        let mut cfg = Flavor::Cusan.config();
        cfg.shadow_tiered = false;
        let on = ToolCtx::new(0, cfg);
        assert!(on.config.shadow_tiered);
        assert!(on.tsan.borrow().shadow_tiering_enabled());
        std::env::remove_var("CUSAN_SHADOW_TIERED");
        let default = ToolCtx::new(0, Flavor::Cusan.config());
        assert!(default.config.shadow_tiered);
    }
}
