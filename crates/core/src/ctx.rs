//! Per-rank tool context: configuration + detector + type runtime + the
//! event pipeline.
//!
//! One [`ToolCtx`] exists per simulated MPI rank (matching the paper's
//! one-TSan-per-process model) and is shared by the checked CUDA API
//! ([`crate::CusanCuda`]) and the MUST layer via `Rc`.
//!
//! All instrumentation flows through [`ToolCtx::emit`] as typed
//! [`CusanEvent`]s (see [`crate::event`]): the checker sink applies each
//! event to the detector first, then the counter sink and any installed
//! sinks (e.g. the trace recorder) observe it, in that order.
//!
//! It also carries the **host-access instrumentation**: the real TSan
//! compiler pass instruments every host load/store of user code; in
//! `cusan-rs` applications perform host accesses to simulated memory
//! through the `host_*` helpers here, which emit read/write range events
//! exactly when the `tsan` flag is active.

use crate::config::ToolConfig;
use crate::event::{CheckerSink, CtxInterner, CusanEvent, EventCounters, EventSink, StrId};
use crate::trace::TraceSink;
use sim_mem::{AddressSpace, MemError, Pod, Ptr};
use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;
use std::sync::OnceLock;
use tsan_rt::{FiberId, RaceReport, TsanRuntime, TsanStats};
use typeart_rt::TypeartRuntime;

/// Process-wide `CUSAN_SHADOW_TIERED` override, read **once** at first
/// use: `0`/`false`/`off` forces the flat shadow walk, `1`/`true`/`on`
/// forces tiering, anything else (or unset) defers to the config. The
/// `OnceLock` guarantees every rank of a run — and every run in the
/// process — sees the same shadow configuration even if the environment
/// is mutated mid-run (e.g. by tests).
static SHADOW_TIERED_ENV: OnceLock<Option<bool>> = OnceLock::new();

/// The frozen environment override (see `SHADOW_TIERED_ENV`).
pub fn shadow_tiered_env() -> Option<bool> {
    *SHADOW_TIERED_ENV.get_or_init(|| match std::env::var("CUSAN_SHADOW_TIERED").as_deref() {
        Ok("0") | Ok("false") | Ok("off") => Some(false),
        Ok("1") | Ok("true") | Ok("on") => Some(true),
        _ => None,
    })
}

/// Shared per-rank tool state. Not `Send`: each rank thread owns its own.
pub struct ToolCtx {
    /// Active instrumentation configuration.
    pub config: ToolConfig,
    /// The race detector (host fiber = this rank's thread).
    pub tsan: RefCell<TsanRuntime>,
    /// Allocation-type tracking.
    pub typeart: RefCell<TypeartRuntime>,
    strings: RefCell<CtxInterner>,
    checker: RefCell<CheckerSink>,
    sinks: RefCell<Vec<Box<dyn EventSink>>>,
    counters: RefCell<EventCounters>,
    rank: usize,
    request_serial: Cell<u64>,
}

impl ToolCtx {
    /// Create the context for one rank. The process-wide frozen
    /// [`shadow_tiered_env`] override, if set, replaces
    /// `config.shadow_tiered`.
    pub fn new(rank: usize, mut config: ToolConfig) -> Self {
        if let Some(tiered) = shadow_tiered_env() {
            config.shadow_tiered = tiered;
        }
        ToolCtx {
            config,
            tsan: RefCell::new(TsanRuntime::with_shadow_tiering(
                &format!("host (rank {rank})"),
                config.shadow_tiered,
            )),
            typeart: RefCell::new(TypeartRuntime::new()),
            strings: RefCell::new(CtxInterner::new()),
            checker: RefCell::new(CheckerSink::new()),
            sinks: RefCell::new(Vec::new()),
            counters: RefCell::new(EventCounters::default()),
            rank,
            request_serial: Cell::new(0),
        }
    }

    /// The rank this context belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Allocate a fresh serial for a non-blocking MPI request fiber.
    pub fn next_request_serial(&self) -> u64 {
        let s = self.request_serial.get();
        self.request_serial.set(s + 1);
        s
    }

    // ---- the event pipeline -------------------------------------------------

    /// Intern a label (context, fiber name, counter name) in the rank's
    /// shared string table.
    pub fn intern_label(&self, label: &str) -> StrId {
        self.strings.borrow_mut().intern(label)
    }

    /// The rank's string table (for sinks and diagnostics).
    pub fn strings(&self) -> Ref<'_, CtxInterner> {
        self.strings.borrow()
    }

    /// Push one event through the pipeline: checker first (detection),
    /// then counters, then installed sinks in install order.
    pub fn emit(&self, ev: CusanEvent) {
        let strings = self.strings.borrow();
        self.checker
            .borrow_mut()
            .apply(&ev, &strings, &mut self.tsan.borrow_mut());
        self.counters.borrow_mut().observe(&ev, &strings);
        for sink in self.sinks.borrow_mut().iter_mut() {
            sink.on_event(&ev, &strings);
        }
    }

    /// Emit a [`CusanEvent::FiberCreate`] for a fresh fiber and return its
    /// id (predicted via the detector's sink-facing
    /// [`TsanRuntime::peek_next_fiber`], then asserted by the checker).
    pub fn emit_fiber_create(&self, name: &str) -> FiberId {
        let fiber = self.tsan.borrow().peek_next_fiber();
        let name = self.intern_label(name);
        self.emit(CusanEvent::FiberCreate { fiber, name });
        fiber
    }

    /// Install an observer sink behind the checker and counter stages.
    pub fn install_sink(&self, sink: Box<dyn EventSink>) {
        self.sinks.borrow_mut().push(sink);
    }

    /// Install a [`TraceSink`] recording this rank's event stream;
    /// returns the shared buffer holding the serialized trace.
    pub fn install_trace_sink(&self) -> Rc<RefCell<String>> {
        let (sink, buf) = TraceSink::new(self.rank, self.config.shadow_tiered);
        self.install_sink(Box::new(sink));
        buf
    }

    /// Snapshot of the pipeline's own counters (Table-I view derived
    /// purely from the event stream).
    pub fn event_counters(&self) -> EventCounters {
        self.counters.borrow().clone()
    }

    // ---- host-access instrumentation ---------------------------------------

    /// Annotate a host-side read (no data movement).
    pub fn annotate_host_read(&self, ptr: Ptr, bytes: u64, label: &str) {
        if self.config.tsan {
            let ctx = self.intern_label(label);
            self.emit(CusanEvent::ReadRange {
                addr: ptr.addr(),
                len: bytes,
                ctx,
            });
        }
    }

    /// Annotate a host-side write (no data movement).
    pub fn annotate_host_write(&self, ptr: Ptr, bytes: u64, label: &str) {
        if self.config.tsan {
            let ctx = self.intern_label(label);
            self.emit(CusanEvent::WriteRange {
                addr: ptr.addr(),
                len: bytes,
                ctx,
            });
        }
    }

    /// Instrumented host read of `n` elements.
    pub fn host_read_slice<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        n: u64,
        label: &str,
    ) -> Result<Vec<T>, MemError> {
        self.annotate_host_read(ptr, n * T::SIZE as u64, label);
        space.read_vec::<T>(ptr, n)
    }

    /// Instrumented host write of a slice.
    pub fn host_write_slice<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        data: &[T],
        label: &str,
    ) -> Result<(), MemError> {
        self.annotate_host_write(ptr, (data.len() * T::SIZE) as u64, label);
        space.write_slice_data::<T>(ptr, data)
    }

    /// Instrumented host read of one element.
    pub fn host_read_at<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        label: &str,
    ) -> Result<T, MemError> {
        self.annotate_host_read(ptr, T::SIZE as u64, label);
        space.read_at::<T>(ptr)
    }

    /// Instrumented host write of one element.
    pub fn host_write_at<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        value: T,
        label: &str,
    ) -> Result<(), MemError> {
        self.annotate_host_write(ptr, T::SIZE as u64, label);
        space.write_at::<T>(ptr, value)
    }

    /// Install suppressions from a TSan-style suppression file
    /// (`race:<substring>` lines; see the paper's artifact description —
    /// cluster-specific suppression lists avoid false positives from
    /// uninstrumented libraries).
    pub fn load_suppressions(&self, text: &str) -> Result<usize, String> {
        let sup = tsan_rt::report::Suppressions::parse(text)?;
        let n = sup.len();
        let mut t = self.tsan.borrow_mut();
        for p in sup.patterns() {
            t.add_suppression(p);
        }
        Ok(n)
    }

    // ---- results ------------------------------------------------------------

    /// Race reports collected so far.
    pub fn race_reports(&self) -> Vec<RaceReport> {
        self.tsan.borrow().reports().to_vec()
    }

    /// Number of races reported.
    pub fn race_count(&self) -> u64 {
        self.tsan.borrow().race_count()
    }

    /// Detector counters (Table I TSan rows).
    pub fn tsan_stats(&self) -> TsanStats {
        self.tsan.borrow().stats()
    }

    /// Approximate tool heap usage: detector shadow/clocks + TypeART
    /// tables. Feeds the Fig. 11 reproduction.
    pub fn tool_memory_bytes(&self) -> u64 {
        self.tsan.borrow().memory_bytes() + self.typeart.borrow().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Flavor;
    use sim_mem::MemKind;

    #[test]
    fn host_access_annotates_only_when_tsan_on() {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::HostPageable, 64).unwrap();

        let off = ToolCtx::new(0, Flavor::Vanilla.config());
        off.host_write_at::<f64>(&space, p, 1.0, "w").unwrap();
        assert_eq!(off.tsan_stats().write_range_calls, 0);
        assert_eq!(off.event_counters().write_range_calls, 0);

        let on = ToolCtx::new(0, Flavor::Tsan.config());
        on.host_write_at::<f64>(&space, p, 2.0, "w").unwrap();
        let v: f64 = on.host_read_at(&space, p, "r").unwrap();
        assert_eq!(v, 2.0);
        let s = on.tsan_stats();
        assert_eq!(s.write_range_calls, 1);
        assert_eq!(s.read_range_calls, 1);
        assert_eq!(s.write_bytes, 8);
        // The counter sink sees the same stream the checker applied.
        let c = on.event_counters();
        assert_eq!(c.write_range_calls, 1);
        assert_eq!(c.read_range_calls, 1);
        assert_eq!(c.write_bytes, 8);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::Managed, 64).unwrap();
        let ctx = ToolCtx::new(1, Flavor::Tsan.config());
        ctx.host_write_slice::<f64>(&space, p, &[1.0, 2.0, 3.0], "init")
            .unwrap();
        let v = ctx.host_read_slice::<f64>(&space, p, 3, "check").unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(ctx.rank(), 1);
    }

    #[test]
    fn request_serials_are_unique() {
        let ctx = ToolCtx::new(0, Flavor::MustCusan.config());
        assert_eq!(ctx.next_request_serial(), 0);
        assert_eq!(ctx.next_request_serial(), 1);
        assert_eq!(ctx.next_request_serial(), 2);
    }

    #[test]
    fn tool_memory_nonzero_after_tracking() {
        let ctx = ToolCtx::new(0, Flavor::Cusan.config());
        ctx.annotate_host_write(Ptr(0x4000), 4096, "w");
        assert!(ctx.tool_memory_bytes() > 0);
    }

    #[test]
    fn emitted_fiber_events_drive_the_detector() {
        let ctx = ToolCtx::new(0, Flavor::Cusan.config());
        let f = ctx.emit_fiber_create("cuda stream 1");
        ctx.emit(CusanEvent::FiberSwitch {
            fiber: f,
            sync: true,
        });
        ctx.emit(CusanEvent::FiberSwitch {
            fiber: FiberId::HOST,
            sync: false,
        });
        assert_eq!(ctx.tsan.borrow().fiber_name(f), "cuda stream 1");
        assert_eq!(ctx.tsan_stats().fiber_switches, 2);
        let c = ctx.event_counters();
        assert_eq!(c.fiber_creates, 1);
        assert_eq!(c.fiber_switches, 2);
        assert_eq!(c.sync_switches, 1);
    }

    #[test]
    fn shadow_tiered_env_is_frozen_process_wide() {
        // The first read (whenever it happened in this test process) is
        // the value every ToolCtx sees; mutating the environment
        // afterwards must NOT give later ranks a divergent shadow config.
        let frozen = shadow_tiered_env();
        let a = ToolCtx::new(0, Flavor::Cusan.config());
        std::env::set_var(
            "CUSAN_SHADOW_TIERED",
            if a.config.shadow_tiered { "0" } else { "1" },
        );
        assert_eq!(shadow_tiered_env(), frozen, "env re-read after freeze");
        let b = ToolCtx::new(1, Flavor::Cusan.config());
        assert_eq!(a.config.shadow_tiered, b.config.shadow_tiered);
        assert_eq!(
            a.tsan.borrow().shadow_tiering_enabled(),
            b.tsan.borrow().shadow_tiering_enabled()
        );
        std::env::remove_var("CUSAN_SHADOW_TIERED");
        let c = ToolCtx::new(2, Flavor::Cusan.config());
        assert_eq!(a.config.shadow_tiered, c.config.shadow_tiered);
        // Without an override frozen in, the config default (tiered on)
        // applies; with one frozen in, all ranks share it. Either way the
        // expected value is derivable from the frozen snapshot.
        let expected = frozen.unwrap_or(Flavor::Cusan.config().shadow_tiered);
        assert_eq!(a.config.shadow_tiered, expected);
    }
}
