//! Per-rank tool context: configuration + detector + type runtime + the
//! event pipeline.
//!
//! One [`ToolCtx`] exists per simulated MPI rank (matching the paper's
//! one-TSan-per-process model) and is shared by the checked CUDA API
//! ([`crate::CusanCuda`]) and the MUST layer via `Rc`.
//!
//! All instrumentation flows through [`ToolCtx::emit`] as typed
//! [`CusanEvent`]s (see [`crate::event`]): the owned [`CheckSession`]
//! applies each event to the detector first (inline, or via the checker
//! pool in async mode), then the counter sink and any installed sinks
//! (e.g. the trace recorder) observe it, in that order. `ToolCtx` is the
//! live-instrumentation *front end* over a session — trace replay and
//! `cusan-serve` drive the same [`CheckSession`] without one.
//!
//! It also carries the **host-access instrumentation**: the real TSan
//! compiler pass instruments every host load/store of user code; in
//! `cusan-rs` applications perform host accesses to simulated memory
//! through the `host_*` helpers here, which emit read/write range events
//! exactly when the `tsan` flag is active.

use crate::async_check::{AsyncCheckStats, AsyncChecker};
use crate::config::ToolConfig;
use crate::event::{CtxInterner, CusanEvent, EventCounters, EventSink, FiberPredictor, StrId};
use crate::fault::{FaultInjector, FaultPlan};
use crate::session::{CheckSession, SessionSummary};
use crate::trace::{TraceFormat, TraceSink};
use sim_mem::{AddressSpace, MemError, Pod, Ptr};
use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;
use std::sync::OnceLock;
use tsan_rt::{FiberId, RaceReport, TsanRuntime, TsanStats};
use typeart_rt::TypeartRuntime;

/// Process-wide `CUSAN_SHADOW_TIERED` override, read **once** at first
/// use: `0`/`false`/`off` forces the flat shadow walk, `1`/`true`/`on`
/// forces tiering, anything else (or unset) defers to the config. The
/// `OnceLock` guarantees every rank of a run — and every run in the
/// process — sees the same shadow configuration even if the environment
/// is mutated mid-run (e.g. by tests).
static SHADOW_TIERED_ENV: OnceLock<Option<bool>> = OnceLock::new();

/// The frozen environment override (see `SHADOW_TIERED_ENV`).
pub fn shadow_tiered_env() -> Option<bool> {
    *SHADOW_TIERED_ENV.get_or_init(|| match std::env::var("CUSAN_SHADOW_TIERED").as_deref() {
        Ok("0") | Ok("false") | Ok("off") => Some(false),
        Ok("1") | Ok("true") | Ok("on") => Some(true),
        _ => None,
    })
}

/// Process-wide `CUSAN_SHADOW_ARENA` override, frozen on first read like
/// [`shadow_tiered_env`]: `0`/`false`/`off` restores the one-boxed-
/// allocation-per-page shadow for A/B benchmarking, `1`/`true`/`on`
/// forces the slab arena, anything else defers to the config. Detection
/// results are bit-for-bit identical either way — only allocation
/// behavior (and the `arena_*` stats) differ — so traces never record
/// this knob and replay re-reads it instead.
static SHADOW_ARENA_ENV: OnceLock<Option<bool>> = OnceLock::new();

/// The frozen `CUSAN_SHADOW_ARENA` override (see `SHADOW_ARENA_ENV`).
pub fn shadow_arena_env() -> Option<bool> {
    *SHADOW_ARENA_ENV.get_or_init(|| match std::env::var("CUSAN_SHADOW_ARENA").as_deref() {
        Ok("0") | Ok("false") | Ok("off") => Some(false),
        Ok("1") | Ok("true") | Ok("on") => Some(true),
        _ => None,
    })
}

/// Process-wide `CUSAN_FAULTS=<seed>:<rate>` override, read **once** at
/// first use (same freeze semantics as [`shadow_tiered_env`], for the
/// same reason: every rank must see the same fault plan). A malformed
/// value is ignored with a warning on stderr rather than aborting — the
/// knob must never make a run *less* robust.
static FAULTS_ENV: OnceLock<Option<FaultPlan>> = OnceLock::new();

/// The frozen `CUSAN_FAULTS` override (see `FAULTS_ENV`).
pub fn faults_env() -> Option<FaultPlan> {
    *FAULTS_ENV.get_or_init(|| match std::env::var("CUSAN_FAULTS") {
        Ok(v) => match FaultPlan::parse(&v) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("warning: ignoring CUSAN_FAULTS: {e}");
                None
            }
        },
        Err(_) => None,
    })
}

/// Process-wide `CUSAN_ASYNC_CHECK` override, frozen on first read like
/// [`shadow_tiered_env`]: `1`/`true`/`on` moves every rank's checking onto
/// the shared checker pool, `0`/`false`/`off` forces inline checking,
/// anything else defers to the config. Freezing matters doubly here —
/// sync and async ranks in one run would still be correct (the modes are
/// bit-for-bit identical) but the A/B benchmarks rely on a uniform mode.
static ASYNC_CHECK_ENV: OnceLock<Option<bool>> = OnceLock::new();

/// The frozen `CUSAN_ASYNC_CHECK` override (see `ASYNC_CHECK_ENV`).
pub fn async_check_env() -> Option<bool> {
    *ASYNC_CHECK_ENV.get_or_init(|| match std::env::var("CUSAN_ASYNC_CHECK").as_deref() {
        Ok("0") | Ok("false") | Ok("off") => Some(false),
        Ok("1") | Ok("true") | Ok("on") => Some(true),
        _ => None,
    })
}

/// Process-wide `CUSAN_CHECK_THREADS=<n>` override for the checker
/// pool's worker count, frozen on first read like [`async_check_env`]
/// (the pool is shared process-wide, so a per-rank divergence would be
/// meaningless anyway). `0`, a malformed value, or unset defers to the
/// config; only applies in async mode.
static CHECK_THREADS_ENV: OnceLock<Option<usize>> = OnceLock::new();

/// The frozen `CUSAN_CHECK_THREADS` override (see `CHECK_THREADS_ENV`).
pub fn check_threads_env() -> Option<usize> {
    *CHECK_THREADS_ENV.get_or_init(|| match std::env::var("CUSAN_CHECK_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                if !v.trim().is_empty() {
                    eprintln!(
                        "warning: ignoring CUSAN_CHECK_THREADS={v:?}: not a positive integer"
                    );
                }
                None
            }
        },
        Err(_) => None,
    })
}

/// Process-wide `CUSAN_BARRIER_TIMEOUT_MS=<n>` override for the
/// simulated-MPI barrier poison timeout, frozen on first read like
/// [`async_check_env`] (barriers are shared by all ranks of a world, so
/// per-rank divergence would deadlock the slow side). `0`, a malformed
/// value, or unset defers to [`ToolConfig::barrier_timeout_ms`].
static BARRIER_TIMEOUT_ENV: OnceLock<Option<u64>> = OnceLock::new();

/// Process-wide `CUSAN_TRACE_FORMAT={text,binary}` override for the
/// encoding recording [`TraceSink`]s write, frozen on first read like
/// [`shadow_tiered_env`] (mixed-format twins within one run would break
/// the byte-identical determinism assertions the harness makes across
/// ranks). Readers always sniff, so this is producer-side only; a
/// malformed value is ignored with a warning.
static TRACE_FORMAT_ENV: OnceLock<Option<TraceFormat>> = OnceLock::new();

/// The frozen `CUSAN_TRACE_FORMAT` override (see `TRACE_FORMAT_ENV`).
pub fn trace_format_env() -> Option<TraceFormat> {
    *TRACE_FORMAT_ENV.get_or_init(|| match std::env::var("CUSAN_TRACE_FORMAT") {
        Ok(v) => match TraceFormat::parse(v.trim()) {
            Some(f) => Some(f),
            None => {
                if !v.trim().is_empty() {
                    eprintln!(
                        "warning: ignoring CUSAN_TRACE_FORMAT={v:?}: expected `text` or `binary`"
                    );
                }
                None
            }
        },
        Err(_) => None,
    })
}

/// The frozen `CUSAN_BARRIER_TIMEOUT_MS` override (see
/// `BARRIER_TIMEOUT_ENV`).
pub fn barrier_timeout_env() -> Option<u64> {
    *BARRIER_TIMEOUT_ENV.get_or_init(|| match std::env::var("CUSAN_BARRIER_TIMEOUT_MS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                if !v.trim().is_empty() {
                    eprintln!(
                        "warning: ignoring CUSAN_BARRIER_TIMEOUT_MS={v:?}: not a positive integer"
                    );
                }
                None
            }
        },
        Err(_) => None,
    })
}

/// Where events are checked: inline on the rank thread (the paper's
/// model and the default), or on the shared work-stealing checker pool
/// behind a per-session bounded ring (see [`crate::async_check`]). Both
/// backends drive the same [`CheckSession`] through
/// [`CheckSession::apply`], so results are bit-for-bit equal; only the
/// wall-clock placement of the work differs.
enum CheckerBackend {
    // Boxed to keep the two variants' sizes comparable: the session's
    // runtime is by far the largest piece of per-rank state.
    Sync(Box<RefCell<CheckSession>>),
    Async(AsyncChecker),
}

/// Shared per-rank tool state. Not `Send`: each rank thread owns its own.
pub struct ToolCtx {
    /// Active instrumentation configuration.
    pub config: ToolConfig,
    /// The race detector behind its checking backend.
    backend: CheckerBackend,
    /// Allocation-type tracking.
    pub typeart: RefCell<TypeartRuntime>,
    strings: RefCell<CtxInterner>,
    /// Producer-side mirror of fiber numbering (see [`FiberPredictor`]).
    predictor: RefCell<FiberPredictor>,
    sinks: RefCell<Vec<Box<dyn EventSink>>>,
    counters: RefCell<EventCounters>,
    injector: FaultInjector,
    diagnostics: RefCell<Vec<String>>,
    rank: usize,
    request_serial: Cell<u64>,
}

impl ToolCtx {
    /// Create the context for one rank. The process-wide frozen
    /// [`shadow_tiered_env`], [`shadow_arena_env`], [`faults_env`],
    /// [`async_check_env`], and [`check_threads_env`] overrides, if set,
    /// replace `config.shadow_tiered` / `config.shadow_arena` /
    /// `config.faults` / `config.async_check` / `config.check_threads`.
    pub fn new(rank: usize, mut config: ToolConfig) -> Self {
        if let Some(tiered) = shadow_tiered_env() {
            config.shadow_tiered = tiered;
        }
        if let Some(arena) = shadow_arena_env() {
            config.shadow_arena = arena;
        }
        if let Some(plan) = faults_env() {
            config.faults = plan;
        }
        if let Some(async_check) = async_check_env() {
            config.async_check = async_check;
        }
        if let Some(threads) = check_threads_env() {
            config.check_threads = Some(threads);
        }
        if let Some(ms) = barrier_timeout_env() {
            config.barrier_timeout_ms = Some(ms);
        }
        if let Some(format) = trace_format_env() {
            config.trace_format = format;
        }
        let mut tsan = TsanRuntime::with_options(
            &format!("host (rank {rank})"),
            config.shadow_tiered,
            config.shadow_arena,
            true,
        );
        tsan.set_shadow_page_budget(config.shadow_page_budget);
        let session = CheckSession::from_runtime(rank, tsan);
        let backend = if config.async_check {
            CheckerBackend::Async(AsyncChecker::new(session, config.check_threads))
        } else {
            CheckerBackend::Sync(Box::new(RefCell::new(session)))
        };
        ToolCtx {
            config,
            backend,
            typeart: RefCell::new(TypeartRuntime::new()),
            strings: RefCell::new(CtxInterner::new()),
            predictor: RefCell::new(FiberPredictor::new()),
            sinks: RefCell::new(Vec::new()),
            counters: RefCell::new(EventCounters::default()),
            injector: FaultInjector::new(config.faults),
            diagnostics: RefCell::new(Vec::new()),
            rank,
            request_serial: Cell::new(0),
        }
    }

    /// Run `f` with shared access to the detector. In async mode this
    /// first flushes the event queue, so readers always observe a state
    /// that reflects every event emitted so far — same as sync mode.
    fn with_tsan<R>(&self, f: impl FnOnce(&TsanRuntime) -> R) -> R {
        match &self.backend {
            CheckerBackend::Sync(session) => f(session.borrow().runtime()),
            CheckerBackend::Async(ac) => ac.with_runtime(|rt| f(rt)),
        }
    }

    /// Run `f` with exclusive access to the detector (flushes first in
    /// async mode, like [`Self::with_tsan`]).
    fn with_tsan_mut<R>(&self, f: impl FnOnce(&mut TsanRuntime) -> R) -> R {
        match &self.backend {
            CheckerBackend::Sync(session) => f(session.borrow_mut().runtime_mut()),
            CheckerBackend::Async(ac) => ac.with_runtime(f),
        }
    }

    /// Snapshot the owned [`CheckSession`]'s summary — the same
    /// reports/stats/counters object trace replay and the serve path
    /// produce, so live runs can be compared against them wholesale.
    /// Flushes first in async mode, like every accessor.
    pub fn session_summary(&self) -> SessionSummary {
        match &self.backend {
            CheckerBackend::Sync(session) => session.borrow().summary(),
            CheckerBackend::Async(ac) => ac.with_session(|s| s.summary()),
        }
    }

    /// Barrier: in async mode, wait until the checker pool has applied
    /// every event emitted so far. No-op in sync mode. Harness flush
    /// points call this before collecting outcomes so `RankOutcome`,
    /// `race_count`, and the Table-I snapshot observe a drained queue
    /// (individual accessors also flush, making direct reads safe too).
    pub fn flush_checker(&self) {
        if let CheckerBackend::Async(ac) = &self.backend {
            ac.flush();
        }
    }

    /// Observability counters of the async backend (`None` in sync mode).
    pub fn async_check_stats(&self) -> Option<AsyncCheckStats> {
        match &self.backend {
            CheckerBackend::Sync { .. } => None,
            CheckerBackend::Async(ac) => Some(ac.stats()),
        }
    }

    /// The rank this context belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Allocate a fresh serial for a non-blocking MPI request fiber.
    pub fn next_request_serial(&self) -> u64 {
        let s = self.request_serial.get();
        self.request_serial.set(s + 1);
        s
    }

    // ---- the event pipeline -------------------------------------------------

    /// Intern a label (context, fiber name, counter name) in the rank's
    /// shared string table. A *fresh* label is also forwarded to the
    /// owned session's mirror table, in intern order, so it assigns the
    /// same dense id before any event references it — inline in sync
    /// mode, via an in-order ring message in async mode.
    pub fn intern_label(&self, label: &str) -> StrId {
        let mut strings = self.strings.borrow_mut();
        let before = strings.len();
        let id = strings.intern(label);
        if strings.len() > before {
            match &self.backend {
                CheckerBackend::Sync(session) => {
                    session.borrow_mut().intern(label);
                }
                CheckerBackend::Async(ac) => ac.send_intern(label),
            }
        }
        id
    }

    /// The rank's string table (for sinks and diagnostics).
    pub fn strings(&self) -> Ref<'_, CtxInterner> {
        self.strings.borrow()
    }

    /// Push one event through the pipeline: checker first (detection),
    /// then counters, then installed sinks in install order. With the
    /// async backend the checker stage *enqueues* instead of applying —
    /// counters and sinks still observe on the producer side, from the
    /// same totally-ordered stream, so traces and counter snapshots are
    /// byte-identical across backends (a sink may merely observe an event
    /// the detector has not applied yet).
    pub fn emit(&self, ev: CusanEvent) {
        let strings = self.strings.borrow();
        match &self.backend {
            CheckerBackend::Sync(session) => session.borrow_mut().apply(&ev),
            CheckerBackend::Async(ac) => ac.send_event(ev),
        }
        self.predictor.borrow_mut().observe(&ev);
        self.counters.borrow_mut().observe(&ev, &strings);
        for sink in self.sinks.borrow_mut().iter_mut() {
            sink.on_event(&ev, &strings);
        }
    }

    /// Emit a [`CusanEvent::FiberCreate`] for a fresh fiber and return its
    /// id. The id comes from the producer-side [`FiberPredictor`] (the
    /// detector may lag behind in async mode), and the checker asserts it
    /// matches the runtime's numbering when the event is applied.
    pub fn emit_fiber_create(&self, name: &str) -> FiberId {
        let fiber = self.predictor.borrow().peek();
        let name = self.intern_label(name);
        self.emit(CusanEvent::FiberCreate { fiber, name });
        fiber
    }

    /// Install an observer sink behind the checker and counter stages.
    pub fn install_sink(&self, sink: Box<dyn EventSink>) {
        self.sinks.borrow_mut().push(sink);
    }

    /// Install a [`TraceSink`] recording this rank's event stream in
    /// `config.trace_format`; returns the shared buffer holding the
    /// serialized trace. Call [`Self::finish_sinks`] before reading the
    /// buffer so the trace is sealed (binary traces end with their
    /// end-of-trace marker).
    pub fn install_trace_sink(&self) -> Rc<RefCell<Vec<u8>>> {
        let (sink, buf) = TraceSink::with_format(
            self.config.trace_format,
            self.rank,
            self.config.shadow_tiered,
            self.config.shadow_page_budget,
        );
        self.install_sink(Box::new(sink));
        buf
    }

    /// Declare the event stream complete: every installed sink's
    /// [`EventSink::finish`] runs (sealing recorded traces). Idempotent;
    /// harness flush points call it right after [`Self::flush_checker`],
    /// before collecting outcomes.
    pub fn finish_sinks(&self) {
        for sink in self.sinks.borrow_mut().iter_mut() {
            sink.finish();
        }
    }

    // ---- fault injection ----------------------------------------------------

    /// Query the fault injector at one interception site. Advances the
    /// per-rank site counter exactly once per call (the counter *is* the
    /// site numbering, so every checked API entry point queries exactly
    /// once, before doing anything else). Returns `true` if the call must
    /// fail, in which case an [`CusanEvent::ApiFault`] was emitted so the
    /// trace carries the fault schedule.
    pub fn should_fault(&self, call: &'static str) -> bool {
        match self.injector.next_site() {
            Some(site) => {
                let call = self.intern_label(call);
                self.emit(CusanEvent::ApiFault { call, site });
                true
            }
            None => false,
        }
    }

    /// The active fault plan (after any `CUSAN_FAULTS` override).
    pub fn fault_plan(&self) -> FaultPlan {
        self.injector.plan()
    }

    // ---- diagnostics --------------------------------------------------------

    /// Report a non-fatal tool-internal problem (e.g. a teardown flush
    /// failure) instead of panicking the rank thread. The message is
    /// retained for the harness outcome and mirrored into the event
    /// pipeline as a named counter bump so traces and counters record
    /// that the run degraded.
    pub fn report_diagnostic(&self, msg: impl Into<String>) {
        let msg = msg.into();
        let counter = self.intern_label("tool.diagnostics");
        self.emit(CusanEvent::CounterBump { counter, delta: 1 });
        self.diagnostics.borrow_mut().push(msg);
    }

    /// Diagnostics reported so far.
    pub fn diagnostics(&self) -> Vec<String> {
        self.diagnostics.borrow().clone()
    }

    /// Snapshot of the pipeline's own counters (Table-I view derived
    /// purely from the event stream).
    pub fn event_counters(&self) -> EventCounters {
        self.counters.borrow().clone()
    }

    // ---- host-access instrumentation ---------------------------------------

    /// Annotate a host-side read (no data movement).
    pub fn annotate_host_read(&self, ptr: Ptr, bytes: u64, label: &str) {
        if self.config.tsan {
            let ctx = self.intern_label(label);
            self.emit(CusanEvent::ReadRange {
                addr: ptr.addr(),
                len: bytes,
                ctx,
            });
        }
    }

    /// Annotate a host-side write (no data movement).
    pub fn annotate_host_write(&self, ptr: Ptr, bytes: u64, label: &str) {
        if self.config.tsan {
            let ctx = self.intern_label(label);
            self.emit(CusanEvent::WriteRange {
                addr: ptr.addr(),
                len: bytes,
                ctx,
            });
        }
    }

    /// Instrumented host read of `n` elements.
    pub fn host_read_slice<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        n: u64,
        label: &str,
    ) -> Result<Vec<T>, MemError> {
        self.annotate_host_read(ptr, n * T::SIZE as u64, label);
        space.read_vec::<T>(ptr, n)
    }

    /// Instrumented host write of a slice.
    pub fn host_write_slice<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        data: &[T],
        label: &str,
    ) -> Result<(), MemError> {
        self.annotate_host_write(ptr, (data.len() * T::SIZE) as u64, label);
        space.write_slice_data::<T>(ptr, data)
    }

    /// Instrumented host read of one element.
    pub fn host_read_at<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        label: &str,
    ) -> Result<T, MemError> {
        self.annotate_host_read(ptr, T::SIZE as u64, label);
        space.read_at::<T>(ptr)
    }

    /// Instrumented host write of one element.
    pub fn host_write_at<T: Pod>(
        &self,
        space: &AddressSpace,
        ptr: Ptr,
        value: T,
        label: &str,
    ) -> Result<(), MemError> {
        self.annotate_host_write(ptr, T::SIZE as u64, label);
        space.write_at::<T>(ptr, value)
    }

    /// Install suppressions from a TSan-style suppression file
    /// (`race:<substring>` lines; see the paper's artifact description —
    /// cluster-specific suppression lists avoid false positives from
    /// uninstrumented libraries).
    pub fn load_suppressions(&self, text: &str) -> Result<usize, String> {
        let sup = tsan_rt::report::Suppressions::parse(text)?;
        let n = sup.len();
        self.with_tsan_mut(|t| {
            for p in sup.patterns() {
                t.add_suppression(p);
            }
        });
        Ok(n)
    }

    // ---- results ------------------------------------------------------------
    //
    // Every accessor goes through the backend, which in async mode
    // flushes the event queue first: reads always observe the fully
    // drained detector state, exactly as if checking had been inline.

    /// Race reports collected so far.
    pub fn race_reports(&self) -> Vec<RaceReport> {
        self.with_tsan(|t| t.reports().to_vec())
    }

    /// Number of races reported.
    pub fn race_count(&self) -> u64 {
        self.with_tsan(|t| t.race_count())
    }

    /// Detector counters (Table I TSan rows).
    pub fn tsan_stats(&self) -> TsanStats {
        self.with_tsan(|t| t.stats())
    }

    /// Approximate tool heap usage: detector shadow/clocks + TypeART
    /// tables. Feeds the Fig. 11 reproduction.
    pub fn tool_memory_bytes(&self) -> u64 {
        self.with_tsan(|t| t.memory_bytes()) + self.typeart.borrow().memory_bytes()
    }

    /// Name of a fiber (for diagnostics and tests).
    pub fn fiber_name(&self, f: FiberId) -> String {
        self.with_tsan(|t| t.fiber_name(f).to_string())
    }

    /// The detector's shadow page budget (for tests and figures).
    pub fn shadow_page_budget(&self) -> Option<usize> {
        self.with_tsan(|t| t.shadow_page_budget())
    }

    /// Shadow pages currently owned by the detector.
    pub fn shadow_pages(&self) -> usize {
        self.with_tsan(|t| t.shadow_pages())
    }

    /// Whether the detector's tiered shadow walk is active.
    pub fn shadow_tiering_enabled(&self) -> bool {
        self.with_tsan(|t| t.shadow_tiering_enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Flavor;
    use sim_mem::MemKind;

    #[test]
    fn host_access_annotates_only_when_tsan_on() {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::HostPageable, 64).unwrap();

        let off = ToolCtx::new(0, Flavor::Vanilla.config());
        off.host_write_at::<f64>(&space, p, 1.0, "w").unwrap();
        assert_eq!(off.tsan_stats().write_range_calls, 0);
        assert_eq!(off.event_counters().write_range_calls, 0);

        let on = ToolCtx::new(0, Flavor::Tsan.config());
        on.host_write_at::<f64>(&space, p, 2.0, "w").unwrap();
        let v: f64 = on.host_read_at(&space, p, "r").unwrap();
        assert_eq!(v, 2.0);
        let s = on.tsan_stats();
        assert_eq!(s.write_range_calls, 1);
        assert_eq!(s.read_range_calls, 1);
        assert_eq!(s.write_bytes, 8);
        // The counter sink sees the same stream the checker applied.
        let c = on.event_counters();
        assert_eq!(c.write_range_calls, 1);
        assert_eq!(c.read_range_calls, 1);
        assert_eq!(c.write_bytes, 8);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::Managed, 64).unwrap();
        let ctx = ToolCtx::new(1, Flavor::Tsan.config());
        ctx.host_write_slice::<f64>(&space, p, &[1.0, 2.0, 3.0], "init")
            .unwrap();
        let v = ctx.host_read_slice::<f64>(&space, p, 3, "check").unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(ctx.rank(), 1);
    }

    #[test]
    fn request_serials_are_unique() {
        let ctx = ToolCtx::new(0, Flavor::MustCusan.config());
        assert_eq!(ctx.next_request_serial(), 0);
        assert_eq!(ctx.next_request_serial(), 1);
        assert_eq!(ctx.next_request_serial(), 2);
    }

    #[test]
    fn tool_memory_nonzero_after_tracking() {
        let ctx = ToolCtx::new(0, Flavor::Cusan.config());
        ctx.annotate_host_write(Ptr(0x4000), 4096, "w");
        assert!(ctx.tool_memory_bytes() > 0);
    }

    #[test]
    fn emitted_fiber_events_drive_the_detector() {
        let ctx = ToolCtx::new(0, Flavor::Cusan.config());
        let f = ctx.emit_fiber_create("cuda stream 1");
        ctx.emit(CusanEvent::FiberSwitch {
            fiber: f,
            sync: true,
        });
        ctx.emit(CusanEvent::FiberSwitch {
            fiber: FiberId::HOST,
            sync: false,
        });
        assert_eq!(ctx.fiber_name(f), "cuda stream 1");
        assert_eq!(ctx.tsan_stats().fiber_switches, 2);
        let c = ctx.event_counters();
        assert_eq!(c.fiber_creates, 1);
        assert_eq!(c.fiber_switches, 2);
        assert_eq!(c.sync_switches, 1);
    }

    #[test]
    fn should_fault_is_silent_when_disabled() {
        let ctx = ToolCtx::new(0, Flavor::MustCusan.config());
        let before = ctx.tsan_stats();
        for _ in 0..1000 {
            assert!(!ctx.should_fault("cudaMalloc"));
        }
        assert_eq!(ctx.event_counters().api_faults, 0);
        assert_eq!(ctx.tsan_stats(), before);
    }

    #[test]
    fn should_fault_fires_deterministically_and_emits_events() {
        let run = || {
            let mut config = Flavor::MustCusan.config();
            config.faults = FaultPlan::with_rate(11, 0.1);
            let ctx = ToolCtx::new(0, config);
            let fired: Vec<bool> = (0..500).map(|_| ctx.should_fault("cudaMemcpy")).collect();
            (fired, ctx.event_counters().api_faults)
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b, "same plan, same schedule");
        assert_eq!(fa, fb);
        assert!(fa > 0, "10% over 500 sites must fire");
        assert_eq!(fa, a.iter().filter(|f| **f).count() as u64);
    }

    #[test]
    fn fault_events_leave_detector_untouched() {
        // The consistency-on-failure invariant at the ToolCtx level.
        let mut config = Flavor::MustCusan.config();
        config.faults = FaultPlan::with_rate(0, 1.0); // every site fires
        let ctx = ToolCtx::new(0, config);
        let before = ctx.tsan_stats();
        let races = ctx.race_count();
        assert!(ctx.should_fault("MPI_Isend"));
        assert!(ctx.should_fault("cudaMalloc"));
        assert_eq!(ctx.tsan_stats(), before);
        assert_eq!(ctx.race_count(), races);
        assert_eq!(ctx.event_counters().api_faults, 2);
    }

    #[test]
    fn shadow_budget_flows_from_config() {
        let mut config = Flavor::Cusan.config();
        config.shadow_page_budget = Some(4);
        let ctx = ToolCtx::new(0, config);
        assert_eq!(ctx.shadow_page_budget(), Some(4));
        ctx.annotate_host_write(Ptr(0), 16 << 12, "w");
        assert_eq!(ctx.tsan_stats().dropped_annotations, 12);
        assert_eq!(ctx.shadow_pages(), 4);
    }

    #[test]
    fn report_diagnostic_is_collected_and_counted() {
        let ctx = ToolCtx::new(0, Flavor::Vanilla.config());
        assert!(ctx.diagnostics().is_empty());
        ctx.report_diagnostic("device flush at teardown failed: boom");
        ctx.report_diagnostic(String::from("second"));
        assert_eq!(ctx.diagnostics().len(), 2);
        assert!(ctx.diagnostics()[0].contains("flush"));
        assert_eq!(ctx.event_counters().named("tool.diagnostics"), 2);
        // Diagnostics never touch detection state.
        assert_eq!(ctx.race_count(), 0);
    }

    #[test]
    fn async_backend_matches_sync_through_toolctx() {
        // The same emit sequence through both backends must land on a
        // bit-for-bit identical detector (races, stats, counters) — the
        // tentpole invariant, here at the ToolCtx level.
        let drive = |async_check: bool| {
            let mut config = Flavor::Cusan.config();
            config.async_check = async_check;
            let ctx = ToolCtx::new(0, config);
            let f = ctx.emit_fiber_create("cuda stream 1");
            ctx.emit(CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            });
            ctx.annotate_host_write(Ptr(0x2000), 256, "kernel write");
            ctx.emit(CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            });
            ctx.annotate_host_read(Ptr(0x2000), 256, "host read");
            (ctx.race_reports(), ctx.tsan_stats(), ctx.event_counters())
        };
        let sync = drive(false);
        let asyn = drive(true);
        assert_eq!(sync, asyn);
        assert_eq!(sync.0.len(), 1, "the Fig. 6B race fires in both modes");
    }

    #[test]
    fn session_summary_is_backend_invariant() {
        // The owned session's wholesale summary — the object the serve
        // path emits — must be identical across backends, and its
        // counters must agree with the producer-side counter sink.
        let drive = |async_check: bool| {
            let mut config = Flavor::Cusan.config();
            config.async_check = async_check;
            let ctx = ToolCtx::new(0, config);
            let f = ctx.emit_fiber_create("cuda stream 1");
            ctx.emit(CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            });
            ctx.annotate_host_write(Ptr(0x3000), 128, "kernel write");
            ctx.emit(CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            });
            ctx.annotate_host_read(Ptr(0x3000), 128, "host read");
            (ctx.session_summary(), ctx.event_counters())
        };
        let (sync_sum, sync_counters) = drive(false);
        let (async_sum, _) = drive(true);
        assert_eq!(sync_sum, async_sum);
        assert_eq!(sync_sum.rank, 0);
        assert_eq!(sync_sum.race_count, 1);
        assert_eq!(
            sync_sum.counters, sync_counters,
            "session counters mirror the producer-side sink"
        );
    }

    #[test]
    fn barrier_timeout_env_is_frozen_and_config_flows() {
        // Same freeze semantics as every other knob: the first read wins
        // for the whole process, so all ranks (sharing one barrier) see
        // one timeout.
        let frozen = barrier_timeout_env();
        std::env::set_var("CUSAN_BARRIER_TIMEOUT_MS", "12345");
        assert_eq!(barrier_timeout_env(), frozen, "env re-read after freeze");
        std::env::remove_var("CUSAN_BARRIER_TIMEOUT_MS");

        // The config field flows into the context (unless the frozen env
        // override replaces it).
        let mut config = Flavor::Must.config();
        config.barrier_timeout_ms = Some(250);
        let ctx = ToolCtx::new(0, config);
        assert_eq!(ctx.config.barrier_timeout_ms, frozen.or(Some(250)));
        let default_ctx = ToolCtx::new(1, Flavor::Must.config());
        assert_eq!(default_ctx.config.barrier_timeout_ms, frozen);
    }

    #[test]
    fn async_stats_surface_only_in_async_mode() {
        // A frozen CUSAN_ASYNC_CHECK override beats the config field (the
        // CI async-check-smoke job runs this whole suite with it set), so
        // mode-specific assertions only hold for the unforced mode.
        let forced = async_check_env();
        if forced.is_none() {
            let sync_ctx = ToolCtx::new(0, Flavor::Cusan.config());
            assert_eq!(sync_ctx.async_check_stats(), None);
            sync_ctx.flush_checker(); // no-op, must not panic
        }
        if forced == Some(false) {
            return; // env forces inline checking; no async backend to probe
        }
        let mut config = Flavor::Cusan.config();
        config.async_check = true;
        let ctx = ToolCtx::new(0, config);
        let f = ctx.emit_fiber_create("s");
        ctx.emit(CusanEvent::FiberSwitch {
            fiber: f,
            sync: true,
        });
        ctx.flush_checker();
        let stats = ctx.async_check_stats().expect("async backend active");
        // FiberCreate + FiberSwitch; the fiber-name intern message is
        // counted as a message but not as an event.
        assert_eq!(stats.events_enqueued, 2);
        assert!(stats.batches_applied >= 1);
        assert!(stats.max_queue_depth >= 1);
    }

    #[test]
    fn faults_env_is_frozen_process_wide() {
        // Mirrors shadow_tiered_env_is_frozen_process_wide: the first
        // read wins for the whole process, so every rank (and every
        // re-run in one process) sees one plan.
        let frozen = faults_env();
        let a = ToolCtx::new(0, Flavor::MustCusan.config());
        std::env::set_var("CUSAN_FAULTS", "123:0.5");
        assert_eq!(faults_env(), frozen, "env re-read after freeze");
        let b = ToolCtx::new(1, Flavor::MustCusan.config());
        assert_eq!(a.fault_plan(), b.fault_plan());
        std::env::remove_var("CUSAN_FAULTS");
        let expected = frozen.unwrap_or(Flavor::MustCusan.config().faults);
        assert_eq!(a.fault_plan(), expected);
    }

    #[test]
    fn shadow_tiered_env_is_frozen_process_wide() {
        // The first read (whenever it happened in this test process) is
        // the value every ToolCtx sees; mutating the environment
        // afterwards must NOT give later ranks a divergent shadow config.
        let frozen = shadow_tiered_env();
        let a = ToolCtx::new(0, Flavor::Cusan.config());
        std::env::set_var(
            "CUSAN_SHADOW_TIERED",
            if a.config.shadow_tiered { "0" } else { "1" },
        );
        assert_eq!(shadow_tiered_env(), frozen, "env re-read after freeze");
        let b = ToolCtx::new(1, Flavor::Cusan.config());
        assert_eq!(a.config.shadow_tiered, b.config.shadow_tiered);
        assert_eq!(a.shadow_tiering_enabled(), b.shadow_tiering_enabled());
        std::env::remove_var("CUSAN_SHADOW_TIERED");
        let c = ToolCtx::new(2, Flavor::Cusan.config());
        assert_eq!(a.config.shadow_tiered, c.config.shadow_tiered);
        // Without an override frozen in, the config default (tiered on)
        // applies; with one frozen in, all ranks share it. Either way the
        // expected value is derivable from the frozen snapshot.
        let expected = frozen.unwrap_or(Flavor::Cusan.config().shadow_tiered);
        assert_eq!(a.config.shadow_tiered, expected);
    }
}
