//! The typed instrumentation-event pipeline.
//!
//! The paper's architecture is a *callback* layer: the compiler pass
//! inserts CuSan callbacks before each CUDA/MPI call (Fig. 9), and the
//! callbacks translate runtime semantics into TSan annotations. Here that
//! translation is reified: every callback the CUDA layer
//! ([`crate::CusanCuda`]) and the MUST layer emit is a [`CusanEvent`]
//! value flowing through an ordered sink pipeline owned by
//! [`crate::ToolCtx`]:
//!
//! 1. **Checker** ([`CheckerSink`]) — always first. Applies the event to
//!    the rank's [`TsanRuntime`], producing race reports and Table-I TSan
//!    counters. The same apply path drives live detection and offline
//!    trace replay ([`crate::trace::replay`]), which is what makes replay
//!    reproduce live results exactly.
//! 2. **Counters** ([`EventCounters`]) — always installed. Derives
//!    [`EventCounters`] purely from the event stream (including the named
//!    CUDA Table-I rows carried by [`CusanEvent::CounterBump`]).
//! 3. **Installed sinks** — e.g. the trace recorder
//!    ([`crate::trace::TraceSink`]), in install order.
//!
//! Sinks observe events *after* the checker has applied them, and events
//! of one rank are totally ordered (each rank owns its pipeline, matching
//! the one-TSan-per-process model).
//!
//! String payloads (context labels, fiber names, counter names) are
//! interned once per rank in a [`CtxInterner`] — the single source of
//! context naming shared by the CUDA layer's kernel-argument cache, the
//! MUST layer, and the trace string table.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tsan_rt::{CtxId, FiberId, SyncKey, TsanRuntime};

/// Id of a string interned in a [`CtxInterner`]. Ids are dense and
/// allocated in first-use order, which makes them stable across a
/// record/replay round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// Per-session string interner: context labels, fiber names, counter
/// names.
///
/// One instance per [`crate::CheckSession`] (and one producer-side mirror
/// per [`crate::ToolCtx`]); every instrumentation layer interns through
/// it, so a label has exactly one id per session and the trace string
/// table is the single source of context naming.
///
/// Labels are stored as `Arc<str>` so their bytes can be shared — the
/// serve path dedups label storage across thousands of concurrent
/// sessions through [`CtxInterner::intern_shared`], while ids stay dense
/// and per-session (id density is what makes them stable across a
/// record/replay round trip).
#[derive(Debug, Default)]
pub struct CtxInterner {
    labels: Vec<Arc<str>>,
    by_label: HashMap<Arc<str>, StrId>,
}

impl CtxInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a label, returning its stable id.
    pub fn intern(&mut self, label: &str) -> StrId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        self.insert(Arc::from(label))
    }

    /// Intern an already-shared label without copying its bytes; the
    /// interner keeps a reference to the same allocation.
    pub fn intern_shared(&mut self, label: &Arc<str>) -> StrId {
        if let Some(&id) = self.by_label.get(&**label) {
            return id;
        }
        self.insert(Arc::clone(label))
    }

    fn insert(&mut self, label: Arc<str>) -> StrId {
        let id = StrId(self.labels.len() as u32);
        self.labels.push(Arc::clone(&label));
        self.by_label.insert(label, id);
        id
    }

    /// Label of an interned id.
    pub fn label(&self, id: StrId) -> &str {
        self.labels
            .get(id.0 as usize)
            .map(|l| &**l)
            .unwrap_or("<invalid>")
    }

    /// Shared handle to an interned label (None for out-of-range ids).
    pub fn shared_label(&self, id: StrId) -> Option<Arc<str>> {
        self.labels.get(id.0 as usize).map(Arc::clone)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// One instrumentation callback, reified.
///
/// The vocabulary is exactly the TSan-annotation surface of the paper's
/// callback layer plus marker events (alloc/free, MPI request lifecycle,
/// counter bumps) that carry no detection semantics but make the stream
/// self-contained for observability and offline replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CusanEvent {
    /// A fiber was created (CUDA stream or MPI request). `fiber` is the id
    /// the runtime assigned; the checker asserts replay reproduces it.
    FiberCreate { fiber: FiberId, name: StrId },
    /// Active-fiber switch; `sync` carries happens-before from the
    /// previous fiber (`__tsan_switch_to_fiber` flag).
    FiberSwitch { fiber: FiberId, sync: bool },
    /// A fiber was destroyed (MPI request completion).
    FiberDestroy { fiber: FiberId },
    /// `AnnotateHappensBefore` on a sync object's key.
    HappensBefore { key: SyncKey },
    /// `AnnotateHappensAfter` on a sync object's key.
    HappensAfter { key: SyncKey },
    /// `tsan_read_range` on the current fiber.
    ReadRange { addr: u64, len: u64, ctx: StrId },
    /// `tsan_write_range` on the current fiber.
    WriteRange { addr: u64, len: u64, ctx: StrId },
    /// Marker: an allocation became tracked (`kind` names the memory
    /// kind). No detection semantics.
    Alloc { addr: u64, bytes: u64, kind: StrId },
    /// Marker: an allocation was released. The free-as-write annotation
    /// is a separate [`CusanEvent::WriteRange`].
    Free { addr: u64, bytes: u64 },
    /// Marker: a non-blocking MPI request began (serial from
    /// [`crate::ToolCtx::next_request_serial`]).
    RequestBegin { serial: u64 },
    /// Marker: the request completed (wait/test success).
    RequestComplete { serial: u64 },
    /// Marker: a named Table-I counter advanced (CUDA rows).
    CounterBump { counter: StrId, delta: u64 },
    /// Marker: an intercepted CUDA/MPI call returned an injected fault
    /// (see [`crate::fault`]). `call` names the API call, `site` is the
    /// rank's interception-site index. Recording these makes a faulty
    /// run's trace self-contained: replay observes the schedule instead
    /// of re-deciding it.
    ApiFault { call: StrId, site: u64 },
    /// Marker: the schedule controller resolved a commutable choice point
    /// (wildcard-receive match, stream drain order, collective fold
    /// order). `kind` names the choice point (`sched.*` labels from the
    /// `explore` crate), `arity` is how many candidates were offered and
    /// `chosen` which one fired. Recording these makes an explored run's
    /// trace self-contained: the decisions that produced the execution
    /// are in the trace, so the schedule replays bit-for-bit.
    ScheduleChoice {
        kind: StrId,
        arity: u64,
        chosen: u64,
    },
}

/// An ordered observer of the per-rank event stream.
///
/// Sinks run after the checker has applied the event to the detector, in
/// install order. They must not assume anything about other sinks.
pub trait EventSink {
    /// Name for diagnostics.
    fn name(&self) -> &'static str;
    /// Observe one event; `strings` resolves interned ids.
    fn on_event(&mut self, ev: &CusanEvent, strings: &CtxInterner);
    /// The stream is complete — no more events will arrive. Sinks whose
    /// output has a terminator (e.g. a binary trace's end-of-trace
    /// marker) finalize here; the default does nothing. Called by
    /// `ToolCtx::finish_sinks`, and must be idempotent (drop paths may
    /// finalize again as a backstop).
    fn finish(&mut self) {}
}

/// The detection sink: applies events to a [`TsanRuntime`].
///
/// This is the pre-refactor direct-call behavior, factored into the one
/// place that translates events into detector calls. Live runs and
/// [`crate::trace::replay`] both go through [`CheckerSink::apply`], so a
/// replayed trace reproduces fiber numbering, context interning order,
/// report dedup, and counters of the live run exactly.
#[derive(Debug, Default)]
pub struct CheckerSink {
    /// Pipeline [`StrId`] → runtime [`CtxId`], filled lazily in first-use
    /// order (identical live and on replay).
    ctx_map: Vec<Option<CtxId>>,
}

impl CheckerSink {
    /// Fresh checker with an empty context mapping.
    pub fn new() -> Self {
        Self::default()
    }

    fn runtime_ctx(&mut self, rt: &mut TsanRuntime, strings: &CtxInterner, id: StrId) -> CtxId {
        let idx = id.0 as usize;
        if idx >= self.ctx_map.len() {
            self.ctx_map.resize(idx + 1, None);
        }
        *self.ctx_map[idx].get_or_insert_with(|| rt.intern_ctx(strings.label(id)))
    }

    /// The `StrId` → `CtxId` mapping filled so far (session snapshots
    /// serialize it so a restored checker resolves contexts without
    /// re-interning in a different order).
    pub(crate) fn ctx_map(&self) -> &[Option<CtxId>] {
        &self.ctx_map
    }

    /// Rebuild a checker around a snapshotted mapping.
    pub(crate) fn from_ctx_map(ctx_map: Vec<Option<CtxId>>) -> Self {
        CheckerSink { ctx_map }
    }

    /// Apply one event to the detector.
    pub fn apply(&mut self, ev: &CusanEvent, strings: &CtxInterner, rt: &mut TsanRuntime) {
        match *ev {
            CusanEvent::FiberCreate { fiber, name } => {
                let created = rt.create_fiber(strings.label(name));
                assert_eq!(
                    created, fiber,
                    "fiber numbering diverged from the event stream (corrupt trace?)"
                );
            }
            CusanEvent::FiberSwitch { fiber, sync: true } => rt.switch_to_fiber_sync(fiber),
            CusanEvent::FiberSwitch { fiber, sync: false } => rt.switch_to_fiber(fiber),
            CusanEvent::FiberDestroy { fiber } => rt.destroy_fiber(fiber),
            CusanEvent::HappensBefore { key } => rt.annotate_happens_before(key),
            CusanEvent::HappensAfter { key } => {
                rt.annotate_happens_after(key);
            }
            CusanEvent::ReadRange { addr, len, ctx } => {
                let ctx = self.runtime_ctx(rt, strings, ctx);
                rt.read_range(addr, len, ctx);
            }
            CusanEvent::WriteRange { addr, len, ctx } => {
                let ctx = self.runtime_ctx(rt, strings, ctx);
                rt.write_range(addr, len, ctx);
            }
            // Markers: no detection semantics. In particular `ApiFault`
            // must leave the detector untouched — a failed call changes
            // no happens-before state (the consistency-on-failure
            // invariant).
            CusanEvent::Alloc { .. }
            | CusanEvent::Free { .. }
            | CusanEvent::RequestBegin { .. }
            | CusanEvent::RequestComplete { .. }
            | CusanEvent::CounterBump { .. }
            | CusanEvent::ApiFault { .. }
            | CusanEvent::ScheduleChoice { .. } => {}
        }
    }
}

/// Producer-side mirror of the detector's fiber numbering.
///
/// [`crate::ToolCtx::emit_fiber_create`] must stamp a `FiberCreate` event
/// with its fiber id *before* the checker applies it. With the sync
/// backend the id could be peeked from the runtime
/// ([`TsanRuntime::peek_next_fiber`]); with the async backend the runtime
/// lags behind, so the producer mirrors the numbering itself: ids are
/// dense, slots of destroyed fibers are reused LIFO, and the host fiber
/// (id 0) pre-exists. Both backends use this predictor — the checker's
/// equality assertion in [`CheckerSink::apply`] is the safety net that
/// the mirror never diverges.
#[derive(Debug)]
pub struct FiberPredictor {
    /// Next never-used index (1: the host fiber occupies 0).
    next: u32,
    /// Destroyed-fiber indices, reused LIFO (mirrors `FiberTable::free`).
    free: Vec<u32>,
}

impl FiberPredictor {
    /// Mirror of a fresh runtime: only the host fiber exists.
    pub fn new() -> Self {
        FiberPredictor {
            next: 1,
            free: Vec::new(),
        }
    }

    /// The id the next fiber creation will be assigned.
    pub fn peek(&self) -> FiberId {
        match self.free.last() {
            Some(&idx) => FiberId::from_index(idx as usize),
            None => FiberId::from_index(self.next as usize),
        }
    }

    /// Track one event; only fiber create/destroy move the numbering.
    pub fn observe(&mut self, ev: &CusanEvent) {
        match *ev {
            CusanEvent::FiberCreate { fiber, .. } => match self.free.pop() {
                Some(idx) => debug_assert_eq!(idx as usize, fiber.index()),
                None => {
                    debug_assert_eq!(self.next as usize, fiber.index());
                    self.next += 1;
                }
            },
            CusanEvent::FiberDestroy { fiber } => self.free.push(fiber.index() as u32),
            _ => {}
        }
    }
}

impl Default for FiberPredictor {
    fn default() -> Self {
        FiberPredictor::new()
    }
}

/// Counters derived purely from the event stream (the pipeline's own view
/// of Table I). The `named` map carries [`CusanEvent::CounterBump`] rows —
/// the CUDA section of Table I — keyed by counter name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// `FiberCreate` events (host fiber excluded: it is never an event).
    pub fiber_creates: u64,
    /// `FiberDestroy` events.
    pub fiber_destroys: u64,
    /// All `FiberSwitch` events (Table I: "Switch To Fiber").
    pub fiber_switches: u64,
    /// `FiberSwitch` events with `sync = true`.
    pub sync_switches: u64,
    /// `HappensBefore` events (Table I).
    pub happens_before: u64,
    /// `HappensAfter` events (Table I).
    pub happens_after: u64,
    /// `ReadRange` events (Table I: "Memory Read Range").
    pub read_range_calls: u64,
    /// `WriteRange` events (Table I: "Memory Write Range").
    pub write_range_calls: u64,
    /// Bytes covered by `ReadRange` events.
    pub read_bytes: u64,
    /// Bytes covered by `WriteRange` events.
    pub write_bytes: u64,
    /// `Alloc` markers.
    pub allocs: u64,
    /// `Free` markers.
    pub frees: u64,
    /// `RequestBegin` markers.
    pub requests_begun: u64,
    /// `RequestComplete` markers.
    pub requests_completed: u64,
    /// `ApiFault` markers (injected call failures).
    pub api_faults: u64,
    /// `ScheduleChoice` markers (resolved commutable choice points).
    pub schedule_choices: u64,
    /// Named counter totals from `CounterBump` events (e.g.
    /// `cuda.kernel_calls`).
    pub named: BTreeMap<String, u64>,
}

impl EventCounters {
    /// Fold one event into the counters.
    pub fn observe(&mut self, ev: &CusanEvent, strings: &CtxInterner) {
        match *ev {
            CusanEvent::FiberCreate { .. } => self.fiber_creates += 1,
            CusanEvent::FiberDestroy { .. } => self.fiber_destroys += 1,
            CusanEvent::FiberSwitch { sync, .. } => {
                self.fiber_switches += 1;
                if sync {
                    self.sync_switches += 1;
                }
            }
            CusanEvent::HappensBefore { .. } => self.happens_before += 1,
            CusanEvent::HappensAfter { .. } => self.happens_after += 1,
            CusanEvent::ReadRange { len, .. } => {
                self.read_range_calls += 1;
                self.read_bytes += len;
            }
            CusanEvent::WriteRange { len, .. } => {
                self.write_range_calls += 1;
                self.write_bytes += len;
            }
            CusanEvent::Alloc { .. } => self.allocs += 1,
            CusanEvent::Free { .. } => self.frees += 1,
            CusanEvent::RequestBegin { .. } => self.requests_begun += 1,
            CusanEvent::RequestComplete { .. } => self.requests_completed += 1,
            CusanEvent::ApiFault { .. } => self.api_faults += 1,
            CusanEvent::ScheduleChoice { .. } => self.schedule_choices += 1,
            CusanEvent::CounterBump { counter, delta } => {
                *self
                    .named
                    .entry(strings.label(counter).to_string())
                    .or_insert(0) += delta;
            }
        }
    }

    /// A named counter's total (0 if never bumped).
    pub fn named(&self, name: &str) -> u64 {
        self.named.get(name).copied().unwrap_or(0)
    }

    /// Elementwise sum (for aggregating over ranks).
    pub fn merged(&self, other: &EventCounters) -> EventCounters {
        let mut named = self.named.clone();
        for (k, v) in &other.named {
            *named.entry(k.clone()).or_insert(0) += v;
        }
        EventCounters {
            fiber_creates: self.fiber_creates + other.fiber_creates,
            fiber_destroys: self.fiber_destroys + other.fiber_destroys,
            fiber_switches: self.fiber_switches + other.fiber_switches,
            sync_switches: self.sync_switches + other.sync_switches,
            happens_before: self.happens_before + other.happens_before,
            happens_after: self.happens_after + other.happens_after,
            read_range_calls: self.read_range_calls + other.read_range_calls,
            write_range_calls: self.write_range_calls + other.write_range_calls,
            read_bytes: self.read_bytes + other.read_bytes,
            write_bytes: self.write_bytes + other.write_bytes,
            allocs: self.allocs + other.allocs,
            frees: self.frees + other.frees,
            requests_begun: self.requests_begun + other.requests_begun,
            requests_completed: self.requests_completed + other.requests_completed,
            api_faults: self.api_faults + other.api_faults,
            schedule_choices: self.schedule_choices + other.schedule_choices,
            named,
        }
    }
}

/// Names of the CUDA Table-I rows emitted as [`CusanEvent::CounterBump`]
/// by [`crate::CusanCuda`], mirroring [`cuda_sim::CudaCounters`].
pub mod counter_names {
    /// Streams in use (default stream included).
    pub const CUDA_STREAMS: &str = "cuda.streams";
    /// `cudaMemset(+Async)` calls.
    pub const CUDA_MEMSET: &str = "cuda.memset_calls";
    /// `cudaMemcpy(2D)(+Async)` calls.
    pub const CUDA_MEMCPY: &str = "cuda.memcpy_calls";
    /// Explicit synchronization calls.
    pub const CUDA_SYNC: &str = "cuda.sync_calls";
    /// Kernel launches.
    pub const CUDA_KERNEL: &str = "cuda.kernel_calls";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedupes_and_resolves() {
        let mut i = CtxInterner::new();
        let a = i.intern("kernel foo arg#0 [write]");
        let b = i.intern("kernel foo arg#0 [write]");
        let c = i.intern("kernel foo arg#1 [read]");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.label(a), "kernel foo arg#0 [write]");
        assert_eq!(i.len(), 2);
        assert_eq!(i.label(StrId(99)), "<invalid>");
    }

    #[test]
    fn intern_shared_reuses_the_allocation() {
        let mut i = CtxInterner::new();
        let shared: Arc<str> = Arc::from("kernel foo arg#0 [write]");
        let a = i.intern_shared(&shared);
        // The interner holds the same allocation, not a copy.
        assert!(Arc::ptr_eq(&shared, &i.shared_label(a).unwrap()));
        // Byte-equal plain interns resolve to the same id.
        assert_eq!(i.intern("kernel foo arg#0 [write]"), a);
        assert_eq!(i.len(), 1);
        assert!(i.shared_label(StrId(99)).is_none());
    }

    #[test]
    fn checker_applies_detection_semantics() {
        // The Fig. 6B pattern, driven entirely through events.
        let mut strings = CtxInterner::new();
        let name = strings.intern("cuda stream 0");
        let cw = strings.intern("kernel write");
        let cr = strings.intern("host read");
        let mut rt = TsanRuntime::new("host");
        let mut checker = CheckerSink::new();
        let fiber = rt.peek_next_fiber();
        let evs = [
            CusanEvent::FiberCreate { fiber, name },
            CusanEvent::FiberSwitch { fiber, sync: true },
            CusanEvent::WriteRange {
                addr: 0x1000,
                len: 64,
                ctx: cw,
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::ReadRange {
                addr: 0x1000,
                len: 64,
                ctx: cr,
            },
        ];
        for ev in &evs {
            checker.apply(ev, &strings, &mut rt);
        }
        assert_eq!(rt.race_count(), 1);
        let r = &rt.reports()[0];
        assert_eq!(r.previous.fiber, "cuda stream 0");
        assert_eq!(r.previous.ctx, "kernel write");
        assert_eq!(r.current.ctx, "host read");
    }

    #[test]
    #[should_panic(expected = "fiber numbering diverged")]
    fn checker_rejects_diverging_fiber_ids() {
        let mut strings = CtxInterner::new();
        let name = strings.intern("f");
        let mut rt = TsanRuntime::new("host");
        let mut checker = CheckerSink::new();
        checker.apply(
            &CusanEvent::FiberCreate {
                fiber: FiberId::from_index(7),
                name,
            },
            &strings,
            &mut rt,
        );
    }

    #[test]
    fn counters_fold_events() {
        let mut strings = CtxInterner::new();
        let ctx = strings.intern("x");
        let k = strings.intern(counter_names::CUDA_KERNEL);
        let mut c = EventCounters::default();
        let f = FiberId::from_index(1);
        for ev in [
            CusanEvent::FiberCreate {
                fiber: f,
                name: ctx,
            },
            CusanEvent::FiberSwitch {
                fiber: f,
                sync: true,
            },
            CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            },
            CusanEvent::ReadRange {
                addr: 0,
                len: 100,
                ctx,
            },
            CusanEvent::WriteRange {
                addr: 0,
                len: 50,
                ctx,
            },
            CusanEvent::CounterBump {
                counter: k,
                delta: 1,
            },
            CusanEvent::CounterBump {
                counter: k,
                delta: 2,
            },
            CusanEvent::RequestBegin { serial: 0 },
            CusanEvent::RequestComplete { serial: 0 },
            CusanEvent::ApiFault { call: k, site: 17 },
        ] {
            c.observe(&ev, &strings);
        }
        assert_eq!(c.fiber_switches, 2);
        assert_eq!(c.api_faults, 1);
        assert_eq!(c.sync_switches, 1);
        assert_eq!(c.read_bytes, 100);
        assert_eq!(c.write_bytes, 50);
        assert_eq!(c.named(counter_names::CUDA_KERNEL), 3);
        assert_eq!(c.named("cuda.nope"), 0);
        assert_eq!(c.requests_begun, 1);
        let m = c.merged(&c);
        assert_eq!(m.read_bytes, 200);
        assert_eq!(m.named(counter_names::CUDA_KERNEL), 6);
        assert_eq!(m.api_faults, 2);
    }

    #[test]
    fn predictor_mirrors_fiber_table_numbering() {
        // The producer-side mirror must agree with the runtime through
        // create / destroy / LIFO slot reuse — validated by the checker's
        // own equality assertion on every FiberCreate.
        let mut strings = CtxInterner::new();
        let name = strings.intern("f");
        let mut rt = TsanRuntime::new("host");
        let mut checker = CheckerSink::new();
        let mut pred = FiberPredictor::new();
        let step = |pred: &mut FiberPredictor,
                    checker: &mut CheckerSink,
                    rt: &mut TsanRuntime,
                    ev: CusanEvent| {
            checker.apply(&ev, &strings, rt);
            pred.observe(&ev);
        };
        let a = pred.peek();
        assert_eq!(a, rt.peek_next_fiber());
        step(
            &mut pred,
            &mut checker,
            &mut rt,
            CusanEvent::FiberCreate { fiber: a, name },
        );
        let b = pred.peek();
        assert_eq!(b, rt.peek_next_fiber());
        step(
            &mut pred,
            &mut checker,
            &mut rt,
            CusanEvent::FiberCreate { fiber: b, name },
        );
        step(
            &mut pred,
            &mut checker,
            &mut rt,
            CusanEvent::FiberDestroy { fiber: a },
        );
        // Freed slot is reused LIFO; the mirror must predict that too.
        assert_eq!(pred.peek(), a);
        assert_eq!(pred.peek(), rt.peek_next_fiber());
        step(
            &mut pred,
            &mut checker,
            &mut rt,
            CusanEvent::FiberCreate { fiber: a, name },
        );
        assert_eq!(pred.peek(), rt.peek_next_fiber());
    }

    #[test]
    fn api_fault_is_a_detector_noop() {
        // The consistency-on-failure invariant at the event level: an
        // ApiFault marker must not move any detector state.
        let mut strings = CtxInterner::new();
        let call = strings.intern("cudaMalloc");
        let mut rt = TsanRuntime::new("host");
        let mut checker = CheckerSink::new();
        let before = rt.stats();
        checker.apply(&CusanEvent::ApiFault { call, site: 3 }, &strings, &mut rt);
        assert_eq!(rt.stats(), before);
        assert_eq!(rt.race_count(), 0);
    }
}
