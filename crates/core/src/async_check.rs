//! Off-critical-path checking: a per-rank detector thread behind a
//! bounded SPSC ring.
//!
//! The paper's headline cost (Fig. 10) is running the happens-before
//! analysis inline on the application's critical path. The event pipeline
//! already reduced every checked CUDA/MPI call to an ordered
//! [`CusanEvent`] stream, so detection no longer *needs* the rank's
//! thread: in async mode ([`crate::ToolConfig::async_check`] /
//! `CUSAN_ASYNC_CHECK=1`) the rank pushes each event into a bounded
//! lock-free ring ([`rtrb`]) and a dedicated checker thread drains it in
//! batches, applying the events to the rank's [`TsanRuntime`] exactly as
//! the inline path would.
//!
//! **Determinism is an invariant, not a best effort.** The consumer sees
//! the same totally-ordered event stream the sync checker would (one SPSC
//! ring, one producer thread), applies it through the same
//! [`CheckerSink::apply`] to an identically-initialized runtime, and
//! mirrors the producer's string interner via in-order `Msg::Intern`
//! messages (dense ids are allocation-order, so replaying the interns
//! reproduces them). Traces and event counters are produced on the
//! *producer* side from the same stream. Hence stats, race reports, and
//! traces are bit-for-bit identical to sync mode; only wall-clock timing
//! (and the [`AsyncCheckStats`] observability counters) may differ.
//!
//! Protocol details:
//! * **Backpressure** — when the ring is full the producer blocks (bounded
//!   memory), counting one stall per blocked send.
//! * **Batched dequeue** — the consumer locks the runtime once per batch
//!   (≤ [`BATCH`] messages), amortizing lock traffic and wakeups.
//! * **Flush barrier** — [`AsyncChecker::flush`] returns only once every
//!   message sent so far has been applied; every stat/report accessor goes
//!   through it, so readers always observe a drained queue.
//! * **Graceful shutdown** — dropping the checker signals shutdown and
//!   joins the thread, which drains the ring completely before exiting
//!   (and re-raises its panic, if any, on the dropping thread).
//! * All waits use short condvar timeouts (`PARK`): a missed wakeup
//!   costs at most one timeout period, never a deadlock — important on
//!   single-CPU hosts where the two threads interleave coarsely.

use crate::event::{CheckerSink, CtxInterner, CusanEvent};
use parking_lot::{Condvar, Mutex};
use rtrb::{Consumer, Producer, PushError, RingBuffer};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tsan_rt::TsanRuntime;

/// Ring capacity in messages. Bounds producer/consumer skew (and thus the
/// tool's extra memory) regardless of application event rate.
pub const RING_CAPACITY: usize = 4096;

/// Maximum messages applied per runtime lock acquisition.
pub const BATCH: usize = 256;

/// Condvar timeout for all parks: bounds the cost of a lost wakeup.
const PARK: Duration = Duration::from_millis(1);

/// Observability counters for one rank's async checker. Timing-dependent
/// (stalls, depth) — deliberately **not** part of the determinism
/// contract, and surfaced separately from [`tsan_rt::TsanStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncCheckStats {
    /// `CusanEvent`s pushed into the ring (excludes intern messages).
    pub events_enqueued: u64,
    /// Batches the consumer applied (runtime lock acquisitions).
    pub batches_applied: u64,
    /// Largest producer-observed queue depth (sent − applied), in
    /// messages.
    pub max_queue_depth: u64,
    /// Sends that found the ring full and had to block.
    pub stalls: u64,
}

/// One ring message. Intern messages replicate the producer's string
/// table on the consumer in id-allocation order, *before* any event that
/// references the new id.
enum Msg {
    Intern(String),
    Event(CusanEvent),
}

struct Shared {
    /// Messages the consumer has fully applied (published after the
    /// runtime lock is released, so a flusher that observes the count can
    /// immediately take the lock).
    applied: AtomicU64,
    batches: AtomicU64,
    /// Consumer is (about to be) parked on `work_cv`; producers skip the
    /// notify syscall otherwise.
    parked: AtomicBool,
    shutdown: AtomicBool,
    /// Consumer exited (normally or by panic); flush/send must not wait
    /// on it anymore.
    stopped: AtomicBool,
    lock: Mutex<()>,
    /// Producer → consumer: new work (or shutdown).
    work_cv: Condvar,
    /// Consumer → producer: progress (ring space freed / batch applied).
    drain_cv: Condvar,
}

struct ProducerSide {
    tx: Producer<Msg>,
    sent: u64,
    events_enqueued: u64,
    max_queue_depth: u64,
    stalls: u64,
}

/// Handle owned by the rank thread: the producer half of the ring plus
/// the shared runtime. Not `Sync`; one per rank, like the sync backend.
pub struct AsyncChecker {
    runtime: Arc<Mutex<TsanRuntime>>,
    shared: Arc<Shared>,
    prod: RefCell<ProducerSide>,
    handle: Option<JoinHandle<()>>,
}

impl AsyncChecker {
    /// Move `runtime` behind the checker thread for rank `rank`.
    pub fn new(rank: usize, runtime: TsanRuntime) -> Self {
        let (tx, rx) = RingBuffer::new(RING_CAPACITY);
        let runtime = Arc::new(Mutex::new(runtime));
        let shared = Arc::new(Shared {
            applied: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            parked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            lock: Mutex::new(()),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
        });
        let handle = std::thread::Builder::new()
            .name(format!("cusan-checker-{rank}"))
            .spawn({
                let runtime = Arc::clone(&runtime);
                let shared = Arc::clone(&shared);
                move || consumer_loop(rx, runtime, shared)
            })
            .expect("failed to spawn async checker thread");
        AsyncChecker {
            runtime,
            shared,
            prod: RefCell::new(ProducerSide {
                tx,
                sent: 0,
                events_enqueued: 0,
                max_queue_depth: 0,
                stalls: 0,
            }),
            handle: Some(handle),
        }
    }

    /// Enqueue an event for the detector thread.
    pub fn send_event(&self, ev: CusanEvent) {
        self.send(Msg::Event(ev));
    }

    /// Mirror a freshly-interned label to the consumer's string table.
    /// Must be called in intern order, before any event using the new id.
    pub fn send_intern(&self, label: &str) {
        self.send(Msg::Intern(label.to_string()));
    }

    fn send(&self, msg: Msg) {
        let mut p = self.prod.borrow_mut();
        let is_event = matches!(msg, Msg::Event(_));
        let mut msg = msg;
        let mut stalled = false;
        loop {
            match p.tx.push(msg) {
                Ok(()) => break,
                Err(PushError::Full(back)) => {
                    msg = back;
                    if !stalled {
                        stalled = true;
                        p.stalls += 1;
                    }
                    assert!(
                        !self.shared.stopped.load(Ordering::Acquire),
                        "async checker thread terminated; cannot enqueue more events"
                    );
                    self.wake_consumer();
                    let mut g = self.shared.lock.lock();
                    if p.tx.is_full() {
                        self.shared.drain_cv.wait_for(&mut g, PARK);
                    }
                }
            }
        }
        p.sent += 1;
        if is_event {
            p.events_enqueued += 1;
        }
        let depth = p.sent - self.shared.applied.load(Ordering::Relaxed);
        if depth > p.max_queue_depth {
            p.max_queue_depth = depth;
        }
        if self.shared.parked.load(Ordering::SeqCst) {
            self.shared.work_cv.notify_one();
        }
    }

    fn wake_consumer(&self) {
        if self.shared.parked.load(Ordering::SeqCst) {
            self.shared.work_cv.notify_one();
        }
    }

    /// Barrier: returns once every message sent so far has been applied.
    /// Panics if the checker thread died with work outstanding (its own
    /// panic is re-raised when the `AsyncChecker` is dropped).
    pub fn flush(&self) {
        let sent = self.prod.borrow().sent;
        if self.shared.applied.load(Ordering::Acquire) >= sent {
            return;
        }
        self.wake_consumer();
        let mut g = self.shared.lock.lock();
        while self.shared.applied.load(Ordering::Acquire) < sent {
            assert!(
                !self.shared.stopped.load(Ordering::Acquire),
                "async checker thread terminated with events unapplied"
            );
            self.shared.drain_cv.wait_for(&mut g, PARK);
            if self.shared.parked.load(Ordering::SeqCst) {
                self.shared.work_cv.notify_one();
            }
        }
    }

    /// Flush, then run `f` on the (drained) runtime.
    pub fn with_runtime<R>(&self, f: impl FnOnce(&mut TsanRuntime) -> R) -> R {
        self.flush();
        let mut rt = self.runtime.lock();
        f(&mut rt)
    }

    /// Snapshot of the observability counters.
    pub fn stats(&self) -> AsyncCheckStats {
        let p = self.prod.borrow();
        AsyncCheckStats {
            events_enqueued: p.events_enqueued,
            batches_applied: self.shared.batches.load(Ordering::Relaxed),
            max_queue_depth: p.max_queue_depth,
            stalls: p.stalls,
        }
    }
}

impl Drop for AsyncChecker {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                // Re-raise the checker's panic on the rank thread — unless
                // we are already unwinding (double panic would abort).
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

fn consumer_loop(mut rx: Consumer<Msg>, runtime: Arc<Mutex<TsanRuntime>>, shared: Arc<Shared>) {
    /// Marks the consumer stopped and wakes blocked producers even if
    /// `CheckerSink::apply` panics (e.g. a detector assertion) — a
    /// blocked `flush`/`send` must fail fast instead of hanging.
    struct StopGuard(Arc<Shared>);
    impl Drop for StopGuard {
        fn drop(&mut self) {
            self.0.stopped.store(true, Ordering::Release);
            self.0.drain_cv.notify_all();
        }
    }
    let _guard = StopGuard(Arc::clone(&shared));

    let mut checker = CheckerSink::new();
    let mut strings = CtxInterner::new();
    let mut batch: Vec<Msg> = Vec::with_capacity(BATCH);
    loop {
        while batch.len() < BATCH {
            match rx.pop() {
                Ok(m) => batch.push(m),
                Err(_) => break,
            }
        }
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) && rx.is_empty() {
                break;
            }
            let mut g = shared.lock.lock();
            shared.parked.store(true, Ordering::SeqCst);
            if rx.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                shared.work_cv.wait_for(&mut g, PARK);
            }
            shared.parked.store(false, Ordering::SeqCst);
            continue;
        }
        let n = batch.len() as u64;
        {
            let mut rt = runtime.lock();
            for msg in batch.drain(..) {
                match msg {
                    Msg::Intern(label) => {
                        strings.intern(&label);
                    }
                    Msg::Event(ev) => checker.apply(&ev, &strings, &mut rt),
                }
            }
        }
        // Publish progress only after the runtime lock is released, so a
        // flush-then-lock reader never contends with the batch it just
        // observed as applied.
        shared.applied.fetch_add(n, Ordering::Release);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.drain_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StrId;
    use tsan_rt::FiberId;

    fn event_stream(n: u64) -> (CtxInterner, Vec<CusanEvent>) {
        let mut strings = CtxInterner::new();
        let name = strings.intern("stream 1");
        let ctx = strings.intern("kernel write");
        let mut evs = vec![CusanEvent::FiberCreate {
            fiber: FiberId::from_index(1),
            name,
        }];
        for i in 0..n {
            evs.push(CusanEvent::FiberSwitch {
                fiber: FiberId::from_index(1),
                sync: true,
            });
            evs.push(CusanEvent::WriteRange {
                addr: 0x1000 + i * 8,
                len: 8,
                ctx,
            });
            evs.push(CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            });
        }
        (strings, evs)
    }

    fn run_sync(strings: &CtxInterner, evs: &[CusanEvent]) -> tsan_rt::TsanStats {
        let mut rt = TsanRuntime::new("host");
        let mut checker = CheckerSink::new();
        for ev in evs {
            checker.apply(ev, strings, &mut rt);
        }
        rt.stats()
    }

    fn run_async(
        strings: &CtxInterner,
        evs: &[CusanEvent],
    ) -> (tsan_rt::TsanStats, AsyncCheckStats) {
        let ac = AsyncChecker::new(0, TsanRuntime::new("host"));
        for i in 0..strings.len() {
            ac.send_intern(strings.label(StrId(i as u32)));
        }
        for ev in evs {
            ac.send_event(*ev);
        }
        let stats = ac.with_runtime(|rt| rt.stats());
        (stats, ac.stats())
    }

    #[test]
    fn async_matches_sync_bit_for_bit() {
        let (strings, evs) = event_stream(500);
        let sync_stats = run_sync(&strings, &evs);
        let (async_stats, ac) = run_async(&strings, &evs);
        assert_eq!(sync_stats, async_stats);
        assert_eq!(ac.events_enqueued, evs.len() as u64);
        assert!(ac.batches_applied >= 1);
        assert!(ac.max_queue_depth >= 1);
    }

    #[test]
    fn flush_is_a_barrier() {
        let (strings, evs) = event_stream(2000);
        let ac = AsyncChecker::new(0, TsanRuntime::new("host"));
        for i in 0..strings.len() {
            ac.send_intern(strings.label(StrId(i as u32)));
        }
        for ev in &evs {
            ac.send_event(*ev);
        }
        ac.flush();
        // After flush, the applied count covers everything sent; the
        // runtime must already reflect the full stream without further
        // waiting.
        let switches = ac.with_runtime(|rt| rt.stats().fiber_switches);
        assert_eq!(switches, 4000);
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        // More messages than the ring holds: the producer must block (not
        // fail, not drop) and depth can never exceed capacity.
        let (strings, evs) = event_stream(4 * RING_CAPACITY as u64);
        let (stats, ac) = run_async(&strings, &evs);
        assert_eq!(stats.write_range_calls, 4 * RING_CAPACITY as u64);
        assert!(ac.max_queue_depth <= RING_CAPACITY as u64);
        assert_eq!(ac.events_enqueued, evs.len() as u64);
    }

    #[test]
    fn drop_drains_outstanding_events() {
        let races = {
            let ac = AsyncChecker::new(0, TsanRuntime::new("host"));
            let (strings, evs) = event_stream(100);
            for i in 0..strings.len() {
                ac.send_intern(strings.label(StrId(i as u32)));
            }
            for ev in &evs {
                ac.send_event(*ev);
            }
            // No flush: drop must still apply everything (graceful
            // shutdown drains the ring before the thread exits).
            let runtime = Arc::clone(&ac.runtime);
            drop(ac);
            let n = runtime.lock().stats().write_range_calls;
            n
        };
        assert_eq!(races, 100);
    }

    #[test]
    #[should_panic(expected = "fiber numbering diverged")]
    fn consumer_panic_propagates_on_drop() {
        let ac = AsyncChecker::new(0, TsanRuntime::new("host"));
        ac.send_intern("bad");
        ac.send_event(CusanEvent::FiberCreate {
            fiber: FiberId::from_index(40),
            name: StrId(0),
        });
        drop(ac); // joins the checker thread and re-raises its panic
    }
}
