//! Off-critical-path checking: a shared work-stealing checker pool
//! behind per-session bounded SPSC rings.
//!
//! The paper's headline cost (Fig. 10) is running the happens-before
//! analysis inline on the application's critical path. The event pipeline
//! already reduced every checked CUDA/MPI call to an ordered
//! [`CusanEvent`] stream, so detection no longer *needs* the producer's
//! thread: in async mode ([`crate::ToolConfig::async_check`] /
//! `CUSAN_ASYNC_CHECK=1`) the producer pushes each event into a bounded
//! lock-free ring ([`rtrb`]) and the shared [`CheckerPool`] drains it in
//! batches, applying the events to the session's [`CheckSession`] exactly
//! as the inline path would.
//!
//! **Sessions, not ranks.** The pool's unit of registration is a
//! [`CheckSession`] — live instrumentation registers one per rank
//! (through [`crate::ToolCtx`]), while the serve path registers one per
//! uploaded trace stream, multiplexing thousands of independent replay
//! sessions over the same workers. Nothing in the pool assumes its
//! sessions belong to one MPI world.
//!
//! **Pool, not thread-per-session.** Detection work is proportional to
//! the event backlog, not to the session count, so the pool sizes itself
//! from hardware: `min(active sessions, available_parallelism − 1)`
//! worker threads by default (at least one), overridable with
//! [`crate::ToolConfig::check_threads`] / `CUSAN_CHECK_THREADS=<n>`.
//! Workers scan the registered sessions round-robin and *steal whole
//! batches* from whichever ring has backlog. Two invariants make
//! stealing safe:
//!
//! 1. **Claim token** — each session's ring endpoint and batch buffer
//!    ([`Ingress`]) live behind a per-session mutex; a worker that wants
//!    the session's batch must take the claim, so at most one consumer
//!    exists at every instant and the SPSC contract holds across
//!    handoffs (see `compat/rtrb` on consumer handoff).
//! 2. **Apply-before-release** — a claimed batch is applied to its own
//!    session, under that session's lock, before the claim is released.
//!    Combined with FIFO pops this means every session's event stream is
//!    applied in exactly the order it was produced, no matter which
//!    workers end up carrying the batches.
//!
//! **Determinism is an invariant, not a best effort.** Per session, the
//! pool applies the same totally-ordered event stream the sync checker
//! would, through the same [`CheckSession::apply`], to an
//! identically-initialized session, and mirrors the producer's string
//! interner via in-order `Msg::Intern` messages (dense ids are
//! allocation-order, so replaying the interns reproduces them). Hence
//! stats, race reports, counters, and traces are bit-for-bit identical
//! to sync mode — for any worker count and any number of concurrent
//! sessions — and only wall-clock timing (plus the [`AsyncCheckStats`]
//! observability counters) may differ.
//!
//! Protocol details:
//! * **Backpressure** — when the ring is full the producer first tries to
//!   drain its own ring inline (claiming it like any worker would), and
//!   otherwise blocks (bounded memory), counting one stall per blocked
//!   send.
//! * **Adaptive batches** — the drain batch size follows the observed
//!   backlog (`Consumer::slots_used`), clamped to
//!   [`BATCH_MIN`]..=[`BATCH_MAX`]: small batches when the ring is
//!   near-empty (latency), large when backlogged (throughput). The
//!   chosen sizes surface in [`AsyncCheckStats`] (`min/max/avg_batch`,
//!   `batch_hist`).
//! * **Queue depth is ring occupancy** — `max_queue_depth` is the
//!   high-water mark of `Producer::slots_used()` observed at send time,
//!   which is physically bounded by [`RING_CAPACITY`]. (It was once
//!   computed as `sent − applied`, which transiently overcounts by up to
//!   a batch while popped messages await application.)
//! * **Flush barrier** — [`AsyncChecker::flush`] returns only once every
//!   message sent so far has been applied; every stat/report accessor —
//!   including [`AsyncChecker::stats`] — goes through it, so readers
//!   always observe a drained queue.
//! * **Graceful shutdown** — dropping the checker drains the ring
//!   (helping inline if the pool is busy), unregisters the session, and
//!   re-raises the worker's panic, if any, on the dropping thread.
//! * **Poison, don't hang** — a panic while applying a session's batch
//!   (e.g. a detector assertion) is caught on the worker, the session is
//!   poisoned, and its producer's `flush`/`send` fail fast; *other*
//!   sessions keep draining on the surviving workers.
//! * All waits use short condvar timeouts (`PARK`): a missed wakeup
//!   costs at most one timeout period, never a deadlock — important on
//!   single-CPU hosts where threads interleave coarsely.

use crate::event::CusanEvent;
use crate::session::CheckSession;
use parking_lot::{Condvar, Mutex};
use rtrb::{Consumer, Producer, PushError, RingBuffer};
use std::any::Any;
use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use tsan_rt::TsanRuntime;

/// Ring capacity in messages. Bounds producer/consumer skew (and thus the
/// tool's extra memory) regardless of application event rate.
pub const RING_CAPACITY: usize = 4096;

/// Smallest drain-batch target: below this backlog a batch simply takes
/// what is there (latency mode).
pub const BATCH_MIN: usize = 8;

/// Largest messages applied per session lock acquisition (throughput
/// mode; bounds the latency a flusher can see behind one claim).
pub const BATCH_MAX: usize = 256;

/// Power-of-two buckets of the batch-size histogram: bucket `i` counts
/// batches of `2^i ..= 2^(i+1)-1` messages (the last bucket is exactly
/// [`BATCH_MAX`]).
pub const BATCH_HIST_BUCKETS: usize = 9;
const _: () = assert!(1 << (BATCH_HIST_BUCKETS - 1) == BATCH_MAX);

/// Condvar timeout for all parks: bounds the cost of a lost wakeup.
const PARK: Duration = Duration::from_millis(1);

/// The worker count the pool converges to for a given number of active
/// sessions: an explicit override wins, otherwise one worker per session
/// up to `available_parallelism − 1` (always at least one so a 1-CPU
/// host still drains). Exposed for the bench JSON and tests.
pub fn effective_workers(active_sessions: usize, explicit: Option<usize>) -> usize {
    if active_sessions == 0 {
        return 0;
    }
    if let Some(n) = explicit {
        return n.max(1);
    }
    let par = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    active_sessions.min(par.saturating_sub(1)).max(1)
}

/// Observability counters for one session's async checker.
/// Timing-dependent (stalls, depth, batch shapes, steals) — deliberately
/// **not** part of the determinism contract, and surfaced separately
/// from [`tsan_rt::TsanStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncCheckStats {
    /// `CusanEvent`s pushed into the ring (excludes intern messages).
    pub events_enqueued: u64,
    /// Batches applied to this session (lock acquisitions), by any
    /// worker or by the producer helping inline.
    pub batches_applied: u64,
    /// Largest ring occupancy observed by the producer at send time, in
    /// messages. Bounded by [`RING_CAPACITY`] by construction.
    pub max_queue_depth: u64,
    /// Sends that found the ring full and had to block.
    pub stalls: u64,
    /// Smallest batch applied (0 if no batches yet).
    pub min_batch: u64,
    /// Largest batch applied. At most [`BATCH_MAX`].
    pub max_batch: u64,
    /// Mean batch size (messages applied / batches, rounded down).
    pub avg_batch: u64,
    /// Batches applied by a pool worker other than this session's
    /// affinity worker (`slot id mod worker count`) — the work actually
    /// stolen.
    pub batches_stolen: u64,
    /// Power-of-two batch-size histogram (see [`BATCH_HIST_BUCKETS`]).
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
}

/// One ring message. Intern messages replicate the producer's string
/// table in the session's mirror in id-allocation order, *before* any
/// event that references the new id. Labels travel as `Arc<str>` so the
/// serve path's shared cross-session table costs one refcount bump per
/// session, not one byte copy.
enum Msg {
    Intern(Arc<str>),
    Event(CusanEvent),
}

/// Ring-consumer state of one session, handed between workers under the
/// claim lock ([`SessionSlot::work`]). Exactly one thread touches this
/// at any instant. The session itself lives behind its own mutex on the
/// slot — the claim orders *who pops*, the session lock orders *who
/// applies*, and apply-before-release keeps the two aligned.
struct Ingress {
    rx: Consumer<Msg>,
    /// Reusable batch buffer.
    scratch: Vec<Msg>,
}

/// Everything the pool needs to check one registered session.
struct SessionSlot {
    /// Unique registration id (ranks collide across concurrent worlds —
    /// and serve clients choose their own — so this never does). Also
    /// the affinity key for the `batches_stolen` counter.
    id: u64,
    rank: usize,
    /// Explicit worker-count request from this session's config, if any.
    explicit_threads: Option<usize>,
    /// The session under check: detector runtime, mirror interner,
    /// apply path, counters.
    session: Arc<Mutex<CheckSession>>,
    /// The claim token: whoever holds this *is* the session's consumer.
    work: Mutex<Ingress>,
    /// Messages fully applied (published after the session lock is
    /// released, so a flusher that observes the count can immediately
    /// take the lock).
    applied: AtomicU64,
    /// A batch application panicked; producer-side `flush`/`send` must
    /// fail fast instead of waiting forever.
    poisoned: AtomicBool,
    /// The first caught panic payload, re-raised when the session's
    /// [`AsyncChecker`] is dropped.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Consumer → producer progress signaling (ring space freed / batch
    /// applied / poison).
    progress: Mutex<()>,
    drain_cv: Condvar,
    // -- batch-shape observability (Relaxed: monotonic counters) --------
    batches: AtomicU64,
    messages: AtomicU64,
    min_batch: AtomicU64,
    max_batch: AtomicU64,
    stolen: AtomicU64,
    hist: [AtomicU64; BATCH_HIST_BUCKETS],
}

fn hist_bucket(n: u64) -> usize {
    debug_assert!(n >= 1);
    ((u64::BITS - 1 - n.leading_zeros()) as usize).min(BATCH_HIST_BUCKETS - 1)
}

impl SessionSlot {
    /// Claim-holder only: apply whatever sits in `ing.scratch` to this
    /// slot's session, then publish progress. Progress (`applied`, the
    /// batch counters, the wakeup) is published only after the session
    /// lock is released, so a flush-then-lock reader never contends with
    /// the batch it just observed as applied.
    fn apply_scratch(&self, ing: &mut Ingress, stolen: bool) -> usize {
        let n = ing.scratch.len();
        if n == 0 {
            return 0;
        }
        {
            let mut session = self.session.lock();
            for msg in ing.scratch.drain(..) {
                match msg {
                    Msg::Intern(label) => {
                        session.intern_shared(&label);
                    }
                    Msg::Event(ev) => session.apply(&ev),
                }
            }
        }
        let n64 = n as u64;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.messages.fetch_add(n64, Ordering::Relaxed);
        self.min_batch.fetch_min(n64, Ordering::Relaxed);
        self.max_batch.fetch_max(n64, Ordering::Relaxed);
        self.hist[hist_bucket(n64)].fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        self.applied.fetch_add(n64, Ordering::Release);
        self.drain_cv.notify_all();
        n
    }

    /// Claim-holder only: steal one adaptive batch off the ring and
    /// apply it. The batch target follows the observed backlog — small
    /// near-empty for latency, growing toward [`BATCH_MAX`] with
    /// occupancy for throughput. A panic inside the detector poisons the
    /// slot (storing the payload for the owner's drop) instead of
    /// killing the worker; `Err` means poisoned.
    fn drain_guarded(&self, ing: &mut Ingress, stolen: bool) -> Result<usize, ()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(());
        }
        let backlog = ing.rx.slots_used();
        if backlog == 0 {
            return Ok(0);
        }
        let target = backlog.clamp(BATCH_MIN, BATCH_MAX);
        ing.rx.pop_batch(&mut ing.scratch, target);
        match std::panic::catch_unwind(AssertUnwindSafe(|| self.apply_scratch(ing, stolen))) {
            Ok(n) => Ok(n),
            Err(payload) => {
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                self.poisoned.store(true, Ordering::Release);
                self.drain_cv.notify_all();
                Err(())
            }
        }
    }
}

struct PoolState {
    slots: Vec<Arc<SessionSlot>>,
    /// Worker liveness by index. The pool grows by spawning the lowest
    /// dead index and shrinks from the top: a worker whose index is `>=`
    /// the desired count exits at its next scan.
    alive: Vec<bool>,
    handles: Vec<Option<JoinHandle<()>>>,
}

/// The shared detector-thread pool. One global instance serves every
/// session created through [`AsyncChecker::new`]; tests, benches, and
/// the serve engine build private pools with [`CheckerPool::new`] to pin
/// exact worker counts or isolate tenants.
pub struct CheckerPool {
    state: Mutex<PoolState>,
    /// Producers → workers: new work exists somewhere.
    work_cv: Condvar,
    /// Workers currently parked on `work_cv`; producers skip the notify
    /// syscall otherwise.
    idle: AtomicUsize,
    next_id: AtomicU64,
}

static GLOBAL_POOL: OnceLock<Arc<CheckerPool>> = OnceLock::new();

impl CheckerPool {
    /// A fresh, empty pool. Workers are spawned lazily as sessions
    /// register and exit on their own once no session needs them.
    pub fn new() -> Arc<CheckerPool> {
        Arc::new(CheckerPool {
            state: Mutex::new(PoolState {
                slots: Vec::new(),
                alive: Vec::new(),
                handles: Vec::new(),
            }),
            work_cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
        })
    }

    /// The process-wide pool used by [`AsyncChecker::new`].
    pub fn global() -> Arc<CheckerPool> {
        Arc::clone(GLOBAL_POOL.get_or_init(CheckerPool::new))
    }

    /// Live worker threads right now (observability/tests).
    pub fn worker_count(&self) -> usize {
        self.state.lock().alive.iter().filter(|a| **a).count()
    }

    /// Registered sessions right now (observability/tests).
    pub fn session_count(&self) -> usize {
        self.state.lock().slots.len()
    }

    /// The single notify helper every producer-side path funnels
    /// through (send, backpressure, flush, drop): skip the syscall
    /// unless a worker is actually parked. A raced `idle` read at worst
    /// delays a worker by one `PARK` timeout.
    fn kick(&self) {
        if self.idle.load(Ordering::SeqCst) > 0 {
            self.work_cv.notify_one();
        }
    }

    /// Worker count this pool wants for the current registration set:
    /// the largest explicit per-session request wins over the hardware
    /// formula (see [`effective_workers`]).
    fn desired_locked(&self, st: &PoolState) -> usize {
        let explicit = st.slots.iter().filter_map(|s| s.explicit_threads).max();
        effective_workers(st.slots.len(), explicit)
    }

    fn register(self: &Arc<Self>, slot: Arc<SessionSlot>) {
        let mut st = self.state.lock();
        st.slots.push(slot);
        let desired = self.desired_locked(&st);
        for index in 0..desired {
            if index >= st.alive.len() {
                st.alive.push(false);
                st.handles.push(None);
            }
            if !st.alive[index] {
                st.alive[index] = true;
                // Reap the previous incarnation's handle, if any, so
                // exited threads don't accumulate.
                if let Some(old) = st.handles[index].take() {
                    let _ = old.join();
                }
                let pool = Arc::clone(self);
                let handle = std::thread::Builder::new()
                    .name(format!("cusan-checker-{index}"))
                    .spawn(move || worker_loop(pool, index))
                    .expect("failed to spawn checker pool worker");
                st.handles[index] = Some(handle);
            }
        }
        drop(st);
        self.work_cv.notify_all();
    }

    fn unregister(&self, slot: &Arc<SessionSlot>) {
        let mut st = self.state.lock();
        st.slots.retain(|s| s.id != slot.id);
        drop(st);
        // Excess workers notice the shrunken target at their next scan.
        self.work_cv.notify_all();
    }
}

fn worker_loop(pool: Arc<CheckerPool>, index: usize) {
    let mut rot = index;
    loop {
        // Exit check and slot snapshot under one lock: a worker decides
        // to die and clears its alive flag atomically with respect to
        // the spawn logic, so the pool never double-spawns an index.
        let (slots, workers_now) = {
            let mut st = pool.state.lock();
            let desired = pool.desired_locked(&st);
            if index >= desired {
                st.alive[index] = false;
                return;
            }
            (st.slots.clone(), desired as u64)
        };
        let mut applied = 0usize;
        let n = slots.len();
        for k in 0..n {
            let slot = &slots[(rot + k) % n];
            if slot.poisoned.load(Ordering::Acquire) {
                continue;
            }
            // Claim or skip: a session being drained by someone else (a
            // sibling worker or its own producer helping) needs no help.
            if let Some(mut ing) = slot.work.try_lock() {
                let stolen = slot.id % workers_now != index as u64;
                applied += slot.drain_guarded(&mut ing, stolen).unwrap_or(0);
            }
        }
        // Rotate the scan start so one chatty session can't starve
        // others.
        rot = rot.wrapping_add(1);
        if applied == 0 {
            let mut st = pool.state.lock();
            pool.idle.fetch_add(1, Ordering::SeqCst);
            pool.work_cv.wait_for(&mut st, PARK);
            pool.idle.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

struct ProducerSide {
    tx: Producer<Msg>,
    sent: u64,
    events_enqueued: u64,
    max_queue_depth: u64,
    stalls: u64,
}

/// Handle owned by the producing thread: the producer half of the ring
/// plus the session's registration in the shared pool. Not `Sync`; one
/// per session, like the sync backend.
pub struct AsyncChecker {
    pool: Arc<CheckerPool>,
    slot: Arc<SessionSlot>,
    prod: RefCell<ProducerSide>,
}

impl AsyncChecker {
    /// Move `session` behind the global checker pool. `check_threads` is
    /// the session's explicit worker-count request
    /// ([`crate::ToolConfig::check_threads`]); `None` lets the pool size
    /// itself from hardware.
    pub fn new(session: CheckSession, check_threads: Option<usize>) -> Self {
        Self::with_pool(CheckerPool::global(), session, check_threads)
    }

    /// Like [`AsyncChecker::new`] but registering with a specific pool —
    /// tests, benches, and the serve engine use private pools to pin
    /// exact worker counts.
    pub fn with_pool(
        pool: Arc<CheckerPool>,
        session: CheckSession,
        check_threads: Option<usize>,
    ) -> Self {
        let (tx, rx) = RingBuffer::new(RING_CAPACITY);
        let rank = session.rank();
        let slot = Arc::new(SessionSlot {
            id: pool.next_id.fetch_add(1, Ordering::Relaxed),
            rank,
            explicit_threads: check_threads,
            session: Arc::new(Mutex::new(session)),
            work: Mutex::new(Ingress {
                rx,
                scratch: Vec::with_capacity(BATCH_MAX),
            }),
            applied: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            progress: Mutex::new(()),
            drain_cv: Condvar::new(),
            batches: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            min_batch: AtomicU64::new(u64::MAX),
            max_batch: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            hist: Default::default(),
        });
        pool.register(Arc::clone(&slot));
        AsyncChecker {
            pool,
            slot,
            prod: RefCell::new(ProducerSide {
                tx,
                sent: 0,
                events_enqueued: 0,
                max_queue_depth: 0,
                stalls: 0,
            }),
        }
    }

    /// Enqueue an event for the checker pool.
    pub fn send_event(&self, ev: CusanEvent) {
        self.send(Msg::Event(ev));
    }

    /// Mirror a freshly-interned label to the session's string table.
    /// Must be called in intern order, before any event using the new id.
    pub fn send_intern(&self, label: &str) {
        self.send(Msg::Intern(Arc::from(label)));
    }

    /// [`AsyncChecker::send_intern`] for a label whose bytes are already
    /// shared — the serve path's cross-session table hands the same
    /// `Arc<str>` to every session, so mirroring costs a refcount bump
    /// instead of a copy.
    pub fn send_intern_shared(&self, label: Arc<str>) {
        self.send(Msg::Intern(label));
    }

    fn fail_if_poisoned(&self, what: &str) {
        assert!(
            !self.slot.poisoned.load(Ordering::Acquire),
            "async checker pool: session for rank {} is poisoned by a worker panic; {what}",
            self.slot.rank
        );
    }

    /// Claim our own ring if it is free and apply one batch inline: the
    /// producer is allowed to become its session's consumer under
    /// backlog (same claim token as the workers, so the stealing safety
    /// argument is unchanged). Returns messages applied; 0 also when the
    /// claim is currently held elsewhere.
    fn try_help_drain(&self) -> usize {
        match self.slot.work.try_lock() {
            Some(mut ing) => self.slot.drain_guarded(&mut ing, false).unwrap_or(0),
            None => 0,
        }
    }

    fn send(&self, msg: Msg) {
        let mut p = self.prod.borrow_mut();
        let is_event = matches!(msg, Msg::Event(_));
        let mut msg = msg;
        let mut stalled = false;
        loop {
            match p.tx.push(msg) {
                Ok(()) => break,
                Err(PushError::Full(back)) => {
                    msg = back;
                    if !stalled {
                        stalled = true;
                        p.stalls += 1;
                    }
                    self.fail_if_poisoned("cannot enqueue more events");
                    // Prefer doing the work to waiting for it: on an
                    // oversubscribed host the backlogged producer is
                    // often the only runnable thread.
                    if self.try_help_drain() > 0 {
                        continue;
                    }
                    self.pool.kick();
                    let mut g = self.slot.progress.lock();
                    if p.tx.is_full() && !self.slot.poisoned.load(Ordering::Acquire) {
                        self.slot.drain_cv.wait_for(&mut g, PARK);
                    }
                }
            }
        }
        p.sent += 1;
        if is_event {
            p.events_enqueued += 1;
        }
        // Depth is ring occupancy, never `sent − applied`: occupancy is
        // physically capped at RING_CAPACITY, while `applied` lags popped
        // messages by up to a batch. The `max(1)` covers a consumer that
        // already popped our message between the push and this load — it
        // was in the ring for an instant either way.
        let depth = (p.tx.slots_used() as u64).max(1);
        if depth > p.max_queue_depth {
            p.max_queue_depth = depth;
        }
        self.pool.kick();
    }

    /// Barrier: returns once every message sent so far has been applied,
    /// helping to drain inline when the pool is busy elsewhere. Panics
    /// (fails fast) if the session was poisoned by a worker panic — the
    /// original payload is re-raised when the `AsyncChecker` is dropped.
    pub fn flush(&self) {
        let sent = self.prod.borrow().sent;
        loop {
            if self.slot.applied.load(Ordering::Acquire) >= sent {
                return;
            }
            self.fail_if_poisoned("events are lost, not merely late");
            if self.try_help_drain() > 0 {
                continue;
            }
            self.pool.kick();
            let mut g = self.slot.progress.lock();
            if self.slot.applied.load(Ordering::Acquire) < sent
                && !self.slot.poisoned.load(Ordering::Acquire)
            {
                self.slot.drain_cv.wait_for(&mut g, PARK);
            }
        }
    }

    /// Flush, then run `f` on the (drained) session.
    pub fn with_session<R>(&self, f: impl FnOnce(&mut CheckSession) -> R) -> R {
        self.flush();
        let mut session = self.slot.session.lock();
        f(&mut session)
    }

    /// Flush, then run `f` on the (drained) session's runtime.
    pub fn with_runtime<R>(&self, f: impl FnOnce(&mut TsanRuntime) -> R) -> R {
        self.with_session(|s| f(s.runtime_mut()))
    }

    /// The shared handle to the session under check. The serve engine
    /// keeps this past the checker's drop so finished sessions can be
    /// summarized and their shadow pages evicted under the global
    /// budget. Lock discipline: the pool's workers take this lock only
    /// while holding the claim, so briefly locking it from outside never
    /// reorders events — but holding it starves the drain, so don't.
    pub fn session_handle(&self) -> Arc<Mutex<CheckSession>> {
        Arc::clone(&self.slot.session)
    }

    /// Snapshot of the observability counters. Flushes first, like every
    /// stat/report accessor, so the batch counters cover the final
    /// partial batch too. (An earlier version skipped the barrier here
    /// and could undercount `batches_applied` at outcome collection.)
    pub fn stats(&self) -> AsyncCheckStats {
        self.flush();
        let p = self.prod.borrow();
        let batches = self.slot.batches.load(Ordering::Relaxed);
        let messages = self.slot.messages.load(Ordering::Relaxed);
        let mut batch_hist = [0u64; BATCH_HIST_BUCKETS];
        for (out, b) in batch_hist.iter_mut().zip(&self.slot.hist) {
            *out = b.load(Ordering::Relaxed);
        }
        AsyncCheckStats {
            events_enqueued: p.events_enqueued,
            batches_applied: batches,
            max_queue_depth: p.max_queue_depth,
            stalls: p.stalls,
            min_batch: if batches == 0 {
                0
            } else {
                self.slot.min_batch.load(Ordering::Relaxed)
            },
            max_batch: self.slot.max_batch.load(Ordering::Relaxed),
            avg_batch: messages.checked_div(batches).unwrap_or(0),
            batches_stolen: self.slot.stolen.load(Ordering::Relaxed),
            batch_hist,
        }
    }
}

impl Drop for AsyncChecker {
    fn drop(&mut self) {
        // Drain everything still queued (graceful shutdown), helping
        // inline so the drop cannot outwait a busy pool. A poisoned
        // session stops draining — its remaining events are acknowledged
        // lost and the panic payload is re-raised below.
        let sent = self.prod.get_mut().sent;
        while !self.slot.poisoned.load(Ordering::Acquire)
            && self.slot.applied.load(Ordering::Acquire) < sent
        {
            if self.try_help_drain() == 0 {
                self.pool.kick();
                let mut g = self.slot.progress.lock();
                if self.slot.applied.load(Ordering::Acquire) < sent
                    && !self.slot.poisoned.load(Ordering::Acquire)
                {
                    self.slot.drain_cv.wait_for(&mut g, PARK);
                }
            }
        }
        self.pool.unregister(&self.slot);
        if let Some(payload) = self.slot.panic.lock().take() {
            // Re-raise the checker's panic on the producing thread —
            // unless we are already unwinding (double panic would
            // abort).
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CheckerSink, CtxInterner, StrId};
    use tsan_rt::FiberId;

    fn session() -> CheckSession {
        CheckSession::from_runtime(0, TsanRuntime::new("host"))
    }

    fn event_stream(n: u64) -> (CtxInterner, Vec<CusanEvent>) {
        let mut strings = CtxInterner::new();
        let name = strings.intern("stream 1");
        let ctx = strings.intern("kernel write");
        let mut evs = vec![CusanEvent::FiberCreate {
            fiber: FiberId::from_index(1),
            name,
        }];
        for i in 0..n {
            evs.push(CusanEvent::FiberSwitch {
                fiber: FiberId::from_index(1),
                sync: true,
            });
            evs.push(CusanEvent::WriteRange {
                addr: 0x1000 + i * 8,
                len: 8,
                ctx,
            });
            evs.push(CusanEvent::FiberSwitch {
                fiber: FiberId::HOST,
                sync: false,
            });
        }
        (strings, evs)
    }

    fn run_sync(strings: &CtxInterner, evs: &[CusanEvent]) -> tsan_rt::TsanStats {
        let mut rt = TsanRuntime::new("host");
        let mut checker = CheckerSink::new();
        for ev in evs {
            checker.apply(ev, strings, &mut rt);
        }
        rt.stats()
    }

    fn feed(ac: &AsyncChecker, strings: &CtxInterner, evs: &[CusanEvent]) {
        for i in 0..strings.len() {
            ac.send_intern(strings.label(StrId(i as u32)));
        }
        for ev in evs {
            ac.send_event(*ev);
        }
    }

    fn run_async(
        strings: &CtxInterner,
        evs: &[CusanEvent],
    ) -> (tsan_rt::TsanStats, AsyncCheckStats) {
        let ac = AsyncChecker::new(session(), None);
        feed(&ac, strings, evs);
        let stats = ac.with_runtime(|rt| rt.stats());
        (stats, ac.stats())
    }

    #[test]
    fn async_matches_sync_bit_for_bit() {
        let (strings, evs) = event_stream(500);
        let sync_stats = run_sync(&strings, &evs);
        let (async_stats, ac) = run_async(&strings, &evs);
        assert_eq!(sync_stats, async_stats);
        assert_eq!(ac.events_enqueued, evs.len() as u64);
        assert!(ac.batches_applied >= 1);
        assert!(ac.max_queue_depth >= 1);
    }

    #[test]
    fn flush_is_a_barrier() {
        let (strings, evs) = event_stream(2000);
        let ac = AsyncChecker::new(session(), None);
        feed(&ac, &strings, &evs);
        ac.flush();
        // After flush, the applied count covers everything sent; the
        // runtime must already reflect the full stream without further
        // waiting.
        let switches = ac.with_runtime(|rt| rt.stats().fiber_switches);
        assert_eq!(switches, 4000);
    }

    #[test]
    fn session_folds_counters_and_mirrors_strings() {
        // The pool drives CheckSession::apply, so the session-side
        // counters and mirror interner match what the producer fed —
        // the serve path reads summaries from exactly this state.
        let (strings, evs) = event_stream(100);
        let ac = AsyncChecker::new(session(), None);
        feed(&ac, &strings, &evs);
        let (counters, mirrored, shared) = ac.with_session(|s| {
            (
                s.counters().clone(),
                s.strings().len(),
                s.strings().shared_label(StrId(0)),
            )
        });
        assert_eq!(counters.write_range_calls, 100);
        assert_eq!(counters.fiber_switches, 200);
        assert_eq!(mirrored, strings.len());
        assert_eq!(shared.as_deref(), Some("stream 1"));
    }

    #[test]
    fn send_intern_shared_reuses_the_allocation() {
        let ac = AsyncChecker::new(session(), None);
        let label: Arc<str> = Arc::from("kernel write");
        ac.send_intern_shared(Arc::clone(&label));
        let mirrored = ac.with_session(|s| s.strings().shared_label(StrId(0)).unwrap());
        assert!(
            Arc::ptr_eq(&label, &mirrored),
            "the mirror must share the sender's allocation"
        );
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        // More messages than the ring holds: the producer must block (not
        // fail, not drop) and depth — measured as ring occupancy — can
        // never exceed capacity.
        let (strings, evs) = event_stream(4 * RING_CAPACITY as u64);
        let (stats, ac) = run_async(&strings, &evs);
        assert_eq!(stats.write_range_calls, 4 * RING_CAPACITY as u64);
        assert!(ac.max_queue_depth <= RING_CAPACITY as u64);
        assert_eq!(ac.events_enqueued, evs.len() as u64);
    }

    #[test]
    fn queue_depth_counts_ring_occupancy_not_applied_lag() {
        // Regression for the depth accounting bug: the consumer pops
        // messages off the ring (freeing slots for the producer) before
        // bumping `applied`, so the old `sent − applied` depth could
        // transiently exceed RING_CAPACITY by up to a batch. This test
        // manufactures that exact window deterministically: park 64
        // popped-but-unapplied messages, refill the ring to the brim,
        // and check the reported high-water mark. Occupancy-based depth
        // reads RING_CAPACITY; `sent − applied` would read
        // RING_CAPACITY + 64 and fail the assert.
        let pool = CheckerPool::new();
        let ac = AsyncChecker::with_pool(pool, session(), Some(1));
        let mut strings = CtxInterner::new();
        let ctx = strings.intern("w");
        ac.send_intern("w");
        ac.flush();
        {
            // Hold the claim: no worker can drain while we simulate the
            // in-flight window.
            let mut ing = ac.slot.work.lock();
            for i in 0..64u64 {
                ac.send_event(CusanEvent::WriteRange {
                    addr: 0x1000 + i * 8,
                    len: 8,
                    ctx,
                });
            }
            let mut parked = Vec::new();
            assert_eq!(ing.rx.pop_batch(&mut parked, 64), 64);
            ing.scratch.append(&mut parked);
            for i in 0..RING_CAPACITY as u64 {
                ac.send_event(CusanEvent::WriteRange {
                    addr: 0x20_0000 + i * 8,
                    len: 8,
                    ctx,
                });
            }
            assert_eq!(
                ac.prod.borrow().max_queue_depth,
                RING_CAPACITY as u64,
                "depth must be ring occupancy, not sent − applied"
            );
            // Apply the parked prefix in order so the stream stays
            // complete, then let the pool finish the rest.
            let mut ing2 = ing;
            ac.slot.apply_scratch(&mut ing2, false);
        }
        let stats = ac.stats();
        assert_eq!(stats.events_enqueued, 64 + RING_CAPACITY as u64);
        assert!(stats.max_queue_depth <= RING_CAPACITY as u64);
        let writes = ac.with_runtime(|rt| rt.stats().write_range_calls);
        assert_eq!(writes, 64 + RING_CAPACITY as u64);
    }

    #[test]
    fn stats_flushes_before_reporting() {
        // Regression for the stats accounting bug: `stats()` read
        // `batches_applied` without the flush barrier, so outcome
        // collection could undercount the final partial batch. The
        // documented contract is that *every* stat/report accessor goes
        // through the barrier.
        let pool = CheckerPool::new();
        let ac = AsyncChecker::with_pool(pool, session(), Some(1));
        let (strings, evs) = event_stream(3);
        feed(&ac, &strings, &evs);
        let s = ac.stats(); // no explicit flush() before this
        assert_eq!(
            ac.slot.applied.load(Ordering::Acquire),
            ac.prod.borrow().sent,
            "stats() must flush before reading the batch counters"
        );
        assert!(s.batches_applied >= 1, "the partial batch must be counted");
        assert_eq!(
            ac.slot.messages.load(Ordering::Relaxed),
            ac.prod.borrow().sent,
            "every message sent must be accounted to a batch"
        );
    }

    #[test]
    fn adaptive_batches_stay_within_bounds() {
        let (strings, evs) = event_stream(2000);
        let (_, ac) = run_async(&strings, &evs);
        assert!(ac.batches_applied >= 1);
        assert!(ac.min_batch >= 1);
        assert!(ac.min_batch <= ac.avg_batch && ac.avg_batch <= ac.max_batch);
        assert!(ac.max_batch <= BATCH_MAX as u64);
        assert_eq!(
            ac.batch_hist.iter().sum::<u64>(),
            ac.batches_applied,
            "every batch lands in exactly one histogram bucket"
        );
        assert!(ac.batches_stolen <= ac.batches_applied);
    }

    #[test]
    fn stealing_two_sessions_one_worker_is_deterministic() {
        // One worker serves two rings: every batch of the second ring is
        // work that a per-session-thread design would have pinned to a
        // dedicated thread. Both sessions must still match the sync
        // result bit for bit.
        let (strings, evs) = event_stream(800);
        let expected = run_sync(&strings, &evs);
        let pool = CheckerPool::new();
        let a = AsyncChecker::with_pool(Arc::clone(&pool), session(), Some(1));
        let b = AsyncChecker::with_pool(
            Arc::clone(&pool),
            CheckSession::from_runtime(1, TsanRuntime::new("host")),
            Some(1),
        );
        assert_eq!(pool.worker_count(), 1);
        // Interleave the producers so both rings hold work at once.
        for i in 0..strings.len() {
            a.send_intern(strings.label(StrId(i as u32)));
            b.send_intern(strings.label(StrId(i as u32)));
        }
        for ev in &evs {
            a.send_event(*ev);
            b.send_event(*ev);
        }
        assert_eq!(a.with_runtime(|rt| rt.stats()), expected);
        assert_eq!(b.with_runtime(|rt| rt.stats()), expected);
    }

    #[test]
    fn stealing_four_sessions_two_workers_is_deterministic() {
        let (strings, evs) = event_stream(400);
        let expected = run_sync(&strings, &evs);
        let pool = CheckerPool::new();
        let acs: Vec<AsyncChecker> = (0..4)
            .map(|r| {
                AsyncChecker::with_pool(
                    Arc::clone(&pool),
                    CheckSession::from_runtime(r, TsanRuntime::new("host")),
                    Some(2),
                )
            })
            .collect();
        assert_eq!(pool.worker_count(), 2);
        assert_eq!(pool.session_count(), 4);
        for i in 0..strings.len() {
            for ac in &acs {
                ac.send_intern(strings.label(StrId(i as u32)));
            }
        }
        for ev in &evs {
            for ac in &acs {
                ac.send_event(*ev);
            }
        }
        for ac in &acs {
            assert_eq!(ac.with_runtime(|rt| rt.stats()), expected);
            let s = ac.stats();
            assert!(s.batches_applied >= 1);
            assert!(s.batches_stolen <= s.batches_applied);
        }
    }

    #[test]
    fn worker_panic_poisons_only_its_session() {
        // A detector assertion while applying session 0's batch must (a)
        // fail session 0's flush fast instead of hanging it, (b) leave
        // the worker alive to keep draining session 1, and (c) re-raise
        // the original payload when session 0's handle is dropped.
        let pool = CheckerPool::new();
        let bad = AsyncChecker::with_pool(Arc::clone(&pool), session(), Some(1));
        let good = AsyncChecker::with_pool(
            Arc::clone(&pool),
            CheckSession::from_runtime(1, TsanRuntime::new("host")),
            Some(1),
        );
        bad.send_intern("bad");
        bad.send_event(CusanEvent::FiberCreate {
            fiber: FiberId::from_index(40),
            name: StrId(0),
        });
        let flushed = std::panic::catch_unwind(AssertUnwindSafe(|| bad.flush()));
        let payload = flushed.expect_err("poisoned flush must fail fast");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("poisoned"), "fail-fast message, got: {msg}");

        // The surviving session drains normally on the shared worker.
        let (strings, evs) = event_stream(50);
        feed(&good, &strings, &evs);
        let stats = good.with_runtime(|rt| rt.stats());
        assert_eq!(stats.write_range_calls, 50);

        // Dropping the poisoned session re-raises the original panic.
        let dropped = std::panic::catch_unwind(AssertUnwindSafe(move || drop(bad)));
        let payload = dropped.expect_err("drop must re-raise the worker panic");
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            text.contains("fiber numbering diverged"),
            "original payload, got: {text}"
        );
        drop(good); // clean shutdown for the healthy session
        assert_eq!(pool.session_count(), 0);
    }

    #[test]
    fn drop_drains_outstanding_events() {
        let writes = {
            let ac = AsyncChecker::new(session(), None);
            let (strings, evs) = event_stream(100);
            feed(&ac, &strings, &evs);
            // No flush: drop must still apply everything (graceful
            // shutdown drains the ring before unregistering). The
            // session handle outlives the checker — the serve engine
            // relies on exactly this to summarize finished sessions.
            let handle = ac.session_handle();
            drop(ac);
            let n = handle.lock().runtime().stats().write_range_calls;
            n
        };
        assert_eq!(writes, 100);
    }

    #[test]
    fn pool_workers_exit_when_no_sessions_remain() {
        let pool = CheckerPool::new();
        {
            let ac = AsyncChecker::with_pool(Arc::clone(&pool), session(), Some(2));
            let (strings, evs) = event_stream(10);
            feed(&ac, &strings, &evs);
            ac.flush();
            assert_eq!(pool.worker_count(), 2);
        }
        assert_eq!(pool.session_count(), 0);
        // Workers notice the empty registration set within a few parks.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.worker_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(PARK);
        }
        assert_eq!(pool.worker_count(), 0, "idle workers must exit");
    }

    #[test]
    #[should_panic(expected = "fiber numbering diverged")]
    fn consumer_panic_propagates_on_drop() {
        let ac = AsyncChecker::new(session(), None);
        ac.send_intern("bad");
        ac.send_event(CusanEvent::FiberCreate {
            fiber: FiberId::from_index(40),
            name: StrId(0),
        });
        drop(ac); // re-raises the pool worker's panic on this thread
    }

    #[test]
    fn effective_workers_formula() {
        assert_eq!(effective_workers(0, None), 0);
        assert_eq!(effective_workers(0, Some(8)), 0);
        assert_eq!(effective_workers(3, Some(2)), 2);
        assert_eq!(effective_workers(1, Some(0)), 1, "explicit 0 clamps to 1");
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let auto = effective_workers(4, None);
        assert!(auto >= 1 && auto <= 4.min(par.saturating_sub(1)).max(1));
    }
}
