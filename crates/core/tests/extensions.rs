//! Tests for the paper's §VI future-work extensions implemented here:
//! per-thread default-stream mode (§VI-B) and bounded access tracking
//! (§VI-D).

use cuda_sim::{DefaultStreamMode, StreamFlags, StreamId};
use cusan::{CusanCuda, Flavor, ToolCtx};
use kernel_ir::ast::ScalarTy;
use kernel_ir::builder::*;
use kernel_ir::{KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, DeviceId, Ptr};
use std::rc::Rc;
use std::sync::Arc;

struct World {
    cuda: CusanCuda,
    tools: Rc<ToolCtx>,
    fill: KernelId,
    copy: KernelId,
}

fn world(cfg: impl Into<cusan::ToolConfig>) -> World {
    let mut reg = KernelRegistry::new();
    let mut b = KernelBuilder::new("fill");
    let p = b.ptr_param("p", ScalarTy::F64);
    let v = b.scalar_param("v", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |bb| bb.store(p, tid(), v.get()));
    let fill = reg.register_ir(b.finish()).unwrap();

    let mut b = KernelBuilder::new("copy");
    let dst = b.ptr_param("dst", ScalarTy::F64);
    let src = b.ptr_param("src", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |bb| {
        bb.store(dst, tid(), load(src, tid()))
    });
    let copy = reg.register_ir(b.finish()).unwrap();

    let tools = Rc::new(ToolCtx::new(0, cfg.into()));
    let cuda = CusanCuda::new(
        DeviceId(0),
        Arc::new(AddressSpace::new()),
        Arc::new(reg),
        Rc::clone(&tools),
    );
    World {
        cuda,
        tools,
        fill,
        copy,
    }
}

fn launch_fill(w: &mut World, p: Ptr, v: f64, n: u64, s: StreamId) {
    w.cuda
        .launch(
            w.fill,
            LaunchGrid::cover(n, 32),
            s,
            vec![
                LaunchArg::Ptr(p),
                LaunchArg::F64(v),
                LaunchArg::I64(n as i64),
            ],
        )
        .unwrap();
}

fn launch_copy(w: &mut World, dst: Ptr, src: Ptr, n: u64, s: StreamId) {
    w.cuda
        .launch(
            w.copy,
            LaunchGrid::cover(n, 32),
            s,
            vec![
                LaunchArg::Ptr(dst),
                LaunchArg::Ptr(src),
                LaunchArg::I64(n as i64),
            ],
        )
        .unwrap();
}

// ---- §VI-B: per-thread default stream -----------------------------------------

#[test]
fn per_thread_mode_removes_legacy_barrier_and_cusan_reports_the_race() {
    // The same program, correct under legacy semantics, races under
    // per-thread default-stream mode — and the data is genuinely stale.
    for (mode, expect_race, expect_value) in [
        (DefaultStreamMode::Legacy, false, 5.0),
        (DefaultStreamMode::PerThread, true, 0.0),
    ] {
        let mut w = world(Flavor::Cusan);
        w.cuda.set_default_stream_mode(mode);
        let s = w.cuda.stream_create(StreamFlags::Default);
        let d = w.cuda.malloc::<f64>(16).unwrap();
        let out = w.cuda.malloc::<f64>(16).unwrap();
        launch_fill(&mut w, d, 5.0, 16, s);
        // Relies on the legacy barrier: default-stream work waits for s.
        launch_copy(&mut w, out, d, 16, StreamId::DEFAULT);
        w.cuda.stream_synchronize(StreamId::DEFAULT).unwrap();
        let v = w
            .tools
            .host_read_slice::<f64>(w.cuda.space(), out, 16, "check")
            .unwrap();
        assert_eq!(v[0], expect_value, "{mode:?}");
        assert_eq!(w.tools.race_count() > 0, expect_race, "{mode:?}");
        w.cuda.flush().unwrap();
    }
}

#[test]
fn per_thread_default_sync_does_not_cover_user_streams() {
    let mut w = world(Flavor::Cusan);
    w.cuda.set_default_stream_mode(DefaultStreamMode::PerThread);
    let s = w.cuda.stream_create(StreamFlags::Default);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 1.0, 16, s);
    // Legacy mode would terminate s's arc here; per-thread must not.
    w.cuda.stream_synchronize(StreamId::DEFAULT).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1);
    w.cuda.flush().unwrap();
}

#[test]
fn per_thread_explicit_sync_still_works() {
    let mut w = world(Flavor::Cusan);
    w.cuda.set_default_stream_mode(DefaultStreamMode::PerThread);
    let s = w.cuda.stream_create(StreamFlags::Default);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 1.0, 16, s);
    w.cuda.stream_synchronize(s).unwrap();
    let v = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(v[0], 1.0);
    assert_eq!(w.tools.race_count(), 0);
}

#[test]
#[should_panic(expected = "before any work")]
fn mode_change_after_work_rejected() {
    let mut w = world(Flavor::Vanilla);
    let d = w.cuda.malloc::<f64>(4).unwrap();
    launch_fill(&mut w, d, 0.0, 4, StreamId::DEFAULT);
    w.cuda.set_default_stream_mode(DefaultStreamMode::PerThread);
}

// ---- §VI-D: bounded access tracking ---------------------------------------------

fn bounded_cusan() -> cusan::ToolConfig {
    let mut c = Flavor::Cusan.config();
    c.bounded_tracking = true;
    c
}

#[test]
fn analysis_marks_tid_bounded_arguments() {
    let w = world(Flavor::Vanilla);
    let an = w.cuda.registry().analysis();
    assert!(an.tid_bounded(w.fill, 0), "fill indexes with tid only");
    assert!(an.tid_bounded(w.copy, 0));
    assert!(an.tid_bounded(w.copy, 1));
}

#[test]
fn loop_kernels_are_not_tid_bounded() {
    let mut reg = KernelRegistry::new();
    let mut b = KernelBuilder::new("sum");
    let out = b.ptr_param("out", ScalarTy::F64);
    let inp = b.ptr_param("in", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    let acc = b.let_(cf(0.0));
    b.for_(ci(0), n.get(), |b, i| {
        b.set(acc, acc.get() + load(inp, i.get()));
    });
    b.store(out, tid(), acc.get());
    let k = reg.register_ir(b.finish()).unwrap();
    let an = reg.analysis();
    assert!(an.tid_bounded(k, 0), "out written at tid");
    assert!(!an.tid_bounded(k, 1), "in read at loop index");
}

#[test]
fn bounded_tracking_removes_whole_allocation_false_positive() {
    // A "boundary pack" pattern: the kernel writes only the first `nx`
    // elements of a large buffer, then the host reads a DISJOINT region.
    // Whole-allocation annotation flags a race that cannot happen;
    // bounded tracking does not.
    let nx = 32u64;
    for (cfg, expect_fp) in [(Flavor::Cusan.config(), true), (bounded_cusan(), false)] {
        let mut w = world(cfg);
        let big = w.cuda.malloc::<f64>(4096).unwrap();
        launch_fill(&mut w, big, 1.0, nx, StreamId::DEFAULT);
        // Host touches elements far past the kernel's writes, without any
        // synchronization — correct per actual accesses.
        let _ = w
            .tools
            .host_read_slice::<f64>(w.cuda.space(), big.offset(2048 * 8), 64, "disjoint read")
            .unwrap();
        assert_eq!(
            w.tools.race_count() > 0,
            expect_fp,
            "bounded={} should {}report",
            cfg.bounded_tracking,
            if expect_fp { "" } else { "not " }
        );
        w.cuda.flush().unwrap();
    }
}

#[test]
fn bounded_tracking_still_catches_true_races() {
    let mut w = world(bounded_cusan());
    let big = w.cuda.malloc::<f64>(4096).unwrap();
    launch_fill(&mut w, big, 1.0, 32, StreamId::DEFAULT);
    // Overlapping host read inside the kernel's actual write range.
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), big, 16, "overlapping read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1);
    w.cuda.flush().unwrap();
}

#[test]
fn bounded_tracking_reduces_tracked_bytes() {
    let run = |cfg: cusan::ToolConfig| {
        let mut w = world(cfg);
        let big = w.cuda.malloc::<f64>(1 << 16).unwrap();
        for _ in 0..8 {
            launch_fill(&mut w, big, 1.0, 64, StreamId::DEFAULT);
        }
        w.cuda.device_synchronize().unwrap();
        w.cuda.flush().unwrap();
        w.tools.tsan_stats().write_bytes
    };
    let full = run(Flavor::Cusan.config());
    let bounded = run(bounded_cusan());
    assert!(
        bounded * 100 < full,
        "bounded tracking should cut tracked bytes by >100x here: {bounded} vs {full}"
    );
}

// ---- §VI-A: pitched 2-D copy precision -----------------------------------------

/// The per-row annotation of `cudaMemcpy2D` is *precise*: a host access
/// to the bytes BETWEEN transferred rows does not race, while touching a
/// transferred row does.
#[test]
fn memcpy_2d_strided_annotation_precision() {
    use cuda_sim::CopyKind;
    for (touch_gap, expect_race) in [(true, false), (false, true)] {
        let mut w = world(Flavor::Cusan);
        let src = w.cuda.malloc::<f64>(64).unwrap();
        let dst = w.cuda.malloc::<f64>(64).unwrap();
        // Async strided copy: rows of 8 bytes at pitch 32 (1 of every 4
        // elements of dst is written).
        w.cuda
            .memcpy_2d_async(
                dst,
                32,
                src,
                32,
                8,
                8,
                CopyKind::DeviceToDevice,
                StreamId::DEFAULT,
            )
            .unwrap();
        let probe = if touch_gap { dst.offset(16) } else { dst };
        let _ = w
            .tools
            .host_read_slice::<f64>(w.cuda.space(), probe, 1, "probe")
            .unwrap();
        assert_eq!(
            w.tools.race_count() > 0,
            expect_race,
            "touch_gap={touch_gap}"
        );
        w.cuda.flush().unwrap();
    }
}

/// A blocking H2D memcpy2d synchronizes the host like its 1-D sibling.
#[test]
fn memcpy_2d_blocking_synchronizes() {
    use cuda_sim::CopyKind;
    let mut w = world(Flavor::Cusan);
    let h = w.cuda.host_malloc::<f64>(64).unwrap();
    let d = w.cuda.malloc::<f64>(64).unwrap();
    launch_fill(&mut w, d, 2.0, 64, StreamId::DEFAULT);
    // Blocking D2H 2-D copy forces and synchronizes.
    w.cuda
        .memcpy_2d(h, 64, d, 64, 64, 8, CopyKind::DeviceToHost)
        .unwrap();
    let v = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), h, 8, "check")
        .unwrap();
    assert_eq!(v[0], 2.0);
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}
