//! Differential test for the session spill codec: snapshotting a
//! mid-trace [`CheckSession`] and restoring it must be invisible — the
//! restored session finishes the event stream with a bit-for-bit
//! identical [`SessionSummary`] (reports, stats, counters) to a session
//! that was never interrupted. This is the soundness contract the serve
//! path's spill/restore of *unfinished* sessions rests on.

use cusan::{CheckSession, CusanEvent, SessionOptions, SnapshotError, StrId};
use tsan_rt::{FiberId, SyncKey};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic event script: the label table (interned up front, in
/// order, exactly as the serve ingest path replays a trace string table)
/// plus the event sequence.
struct Script {
    labels: Vec<String>,
    events: Vec<CusanEvent>,
}

/// Generate a script by mirroring fiber numbering with a scratch model,
/// mixing every event shape the pipeline carries: fiber churn with LIFO
/// slot reuse, sync and plain switches, release/acquire chains, racy and
/// synchronized ranges, markers (alloc/free/request/fault), and named
/// counter bumps.
fn gen_script(seed: u64, n: usize) -> Script {
    let labels: Vec<String> = (0..8)
        .map(|i| format!("ctx{i}"))
        .chain((0..4).map(|i| format!("fiber{i}")))
        .chain([
            "cuda.kernel_calls".to_string(),
            "cudaMemcpyAsync".to_string(),
        ])
        .collect();
    let ctx = |i: u64| StrId((i % 8) as u32);
    let fname = |i: u64| StrId(8 + (i % 4) as u32);
    let bump = StrId(12);
    let call = StrId(13);
    let mut s = seed;
    let mut live: Vec<FiberId> = vec![FiberId::HOST];
    let mut next: u32 = 1;
    let mut free: Vec<u32> = Vec::new();
    let mut events = Vec::with_capacity(n);
    for i in 0..n {
        let r = splitmix(&mut s);
        match r % 12 {
            0 if live.len() < 5 => {
                let idx = free.pop().unwrap_or_else(|| {
                    next += 1;
                    next - 1
                });
                let fiber = FiberId::from_index(idx as usize);
                live.push(fiber);
                events.push(CusanEvent::FiberCreate {
                    fiber,
                    name: fname(r >> 8),
                });
            }
            1 if live.len() > 2 => {
                let victims: Vec<FiberId> = live
                    .iter()
                    .copied()
                    .filter(|&f| f != FiberId::HOST)
                    .collect();
                let f = victims[(r >> 8) as usize % victims.len()];
                live.retain(|&g| g != f);
                free.push(f.index() as u32);
                events.push(CusanEvent::FiberDestroy { fiber: f });
                // The detector requires the current fiber to stay live;
                // destroying is only issued from the host in this model.
            }
            2 | 3 => {
                let fiber = live[(r >> 8) as usize % live.len()];
                events.push(CusanEvent::FiberSwitch {
                    fiber,
                    sync: (r >> 32) & 1 == 1,
                });
            }
            4 => events.push(CusanEvent::HappensBefore {
                key: SyncKey((r >> 8) % 6),
            }),
            5 => events.push(CusanEvent::HappensAfter {
                key: SyncKey((r >> 8) % 6),
            }),
            6 => events.push(CusanEvent::Alloc {
                addr: 0x10_0000 + 0x1000 * i as u64,
                bytes: 256,
                kind: ctx(r >> 16),
            }),
            7 => events.push(CusanEvent::CounterBump {
                counter: bump,
                delta: 1 + (r >> 8) % 3,
            }),
            8 => events.push(CusanEvent::ApiFault { call, site: r >> 8 }),
            _ => {
                let addr = 0x1000 * ((r >> 8) % 8) + 8 * ((r >> 40) % 4);
                let len = [8u64, 64, 100, 4096][(r >> 16) as usize % 4];
                if (r >> 33) & 1 == 1 {
                    events.push(CusanEvent::WriteRange {
                        addr,
                        len,
                        ctx: ctx(r >> 24),
                    });
                } else {
                    events.push(CusanEvent::ReadRange {
                        addr,
                        len,
                        ctx: ctx(r >> 24),
                    });
                }
            }
        }
    }
    Script { labels, events }
}

/// Fix up the script so `FiberSwitch` never lands on a destroyed fiber
/// and `FiberDestroy` never kills the current fiber: the generator
/// above already guarantees this because destroys only remove non-host
/// fibers from `live` and switches only pick from `live` — but the
/// *current* fiber may be destroyed. Rewrite such destroys to be
/// preceded by a switch to host.
fn sanitize(script: &mut Script) {
    let mut current = FiberId::HOST;
    let mut out = Vec::with_capacity(script.events.len());
    for ev in &script.events {
        if let CusanEvent::FiberDestroy { fiber } = ev {
            if *fiber == current {
                out.push(CusanEvent::FiberSwitch {
                    fiber: FiberId::HOST,
                    sync: false,
                });
                current = FiberId::HOST;
            }
        }
        if let CusanEvent::FiberSwitch { fiber, .. } = ev {
            current = *fiber;
        }
        out.push(*ev);
    }
    script.events = out;
}

fn fresh(budget: Option<usize>) -> CheckSession {
    let mut opts = SessionOptions::new(3);
    opts.shadow_page_budget = budget;
    CheckSession::new(&opts)
}

fn run(session: &mut CheckSession, script: &Script, range: std::ops::Range<usize>) {
    if range.start == 0 {
        for l in &script.labels {
            session.intern(l);
        }
    }
    for ev in &script.events[range] {
        session.apply(ev);
    }
}

#[test]
fn session_spill_restore_is_invisible_at_any_split() {
    for seed in [2u64, 77, 0xBEEF] {
        let mut script = gen_script(seed, 400);
        sanitize(&mut script);
        let n = script.events.len();
        let budget = if seed == 77 { Some(4) } else { None };
        let mut reference = fresh(budget);
        run(&mut reference, &script, 0..n);
        let ref_summary = reference.summary();
        for split in [0, 1, n / 3, n - 1, n] {
            let mut head = fresh(budget);
            run(&mut head, &script, 0..split);
            let blob = head.snapshot_bytes();
            let mut tail = CheckSession::restore_bytes(&blob)
                .unwrap_or_else(|e| panic!("restore at split {split}: {e}"));
            // Canonical: re-snapshotting the restored session reproduces
            // the blob byte-for-byte (the serve spill A/B relies on it).
            assert_eq!(tail.snapshot_bytes(), blob, "split {split} not canonical");
            assert_eq!(tail.rank(), head.rank());
            assert_eq!(tail.summary(), head.summary());
            run(&mut tail, &script, split..n);
            assert_eq!(
                tail.summary(),
                ref_summary,
                "seed {seed} split {split}: resumed session diverged"
            );
            assert_eq!(
                tail.snapshot_bytes(),
                reference.snapshot_bytes(),
                "seed {seed} split {split}: final state bytes diverged"
            );
        }
    }
}

#[test]
fn session_restore_rejects_garbage() {
    let s = fresh(None);
    assert_eq!(
        CheckSession::restore_bytes(b"definitely not a session").err(),
        Some(SnapshotError::BadMagic)
    );
    assert_eq!(
        CheckSession::restore_bytes(b"cus").err(),
        Some(SnapshotError::Truncated)
    );
    let mut blob = s.snapshot_bytes();
    blob[8] = 0x7F; // version field
    assert!(matches!(
        CheckSession::restore_bytes(&blob),
        Err(SnapshotError::UnsupportedVersion(_))
    ));
    let blob = s.snapshot_bytes();
    assert!(CheckSession::restore_bytes(&blob[..blob.len() - 1]).is_err());
    let mut blob = s.snapshot_bytes();
    blob.push(0);
    assert!(matches!(
        CheckSession::restore_bytes(&blob),
        Err(SnapshotError::Corrupt(_))
    ));
    // A runtime-level blob is not a session blob.
    assert_eq!(
        CheckSession::restore_bytes(&s.runtime().snapshot_bytes()).err(),
        Some(SnapshotError::BadMagic)
    );
}

#[test]
fn restored_session_reuses_interned_ids() {
    // Interned labels survive the round trip with their ids: an event
    // referencing a pre-spill StrId resolves to the same context label
    // after restore.
    let mut s = fresh(None);
    let name = s.intern("stream 1");
    let cw = s.intern("kernel write");
    let fiber = s.runtime().peek_next_fiber();
    s.apply(&CusanEvent::FiberCreate { fiber, name });
    s.apply(&CusanEvent::FiberSwitch { fiber, sync: true });
    s.apply(&CusanEvent::WriteRange {
        addr: 0x2000,
        len: 32,
        ctx: cw,
    });
    let mut back = CheckSession::restore_bytes(&s.snapshot_bytes()).unwrap();
    assert_eq!(back.intern("kernel write"), cw, "id stability");
    let cr = back.intern("host read");
    back.apply(&CusanEvent::FiberSwitch {
        fiber: FiberId::HOST,
        sync: false,
    });
    back.apply(&CusanEvent::ReadRange {
        addr: 0x2000,
        len: 32,
        ctx: cr,
    });
    let sum = back.summary();
    assert_eq!(sum.race_count, 1);
    assert_eq!(sum.reports[0].previous.ctx, "kernel write");
    assert_eq!(sum.reports[0].previous.fiber, "stream 1");
}
