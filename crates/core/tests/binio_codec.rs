//! Property tests for the v3 binary trace codec (`cusan::binio`).
//!
//! The invariants under random event sequences:
//!
//!   1. **Round trip** — encode → decode yields the identical
//!      string-table and [`CusanEvent`] stream, and re-encoding the
//!      decoded records reproduces the original bytes exactly (the codec
//!      is canonical: minimal-length varints, fixed delta bases).
//!   2. **Transcode closure** — binary → text → binary is byte-identical,
//!      so the text twin is a faithful alternate spelling, not a lossy
//!      export.
//!   3. **Truncation safety** — *every* strict prefix of a valid binary
//!      trace fails with a typed error; no prefix parses silently (the
//!      end-of-trace marker guarantees this) and none panics.
//!
//! The generator exercises the encoder's hard cases on purpose: large
//! addresses and sync keys (multi-byte varints), descending addresses
//! (negative zigzag deltas), labels with `\n`/`\\`/non-ASCII (the escape
//! path of the text twin), and empty event streams.

use cusan::binio::{BinRecord, Decoder, Encoder};
use cusan::{transcode, CusanEvent, StrId, Trace, TraceFormat};
use proptest::prelude::*;
use tsan_rt::{FiberId, SyncKey};

/// Labels drawn from fragments that stress escaping and UTF-8 in the
/// text twin (the binary side stores raw bytes either way).
fn label_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("stream"),
            Just("mpi req#"),
            Just(" "),
            Just("\n"),
            Just("\\"),
            Just("é✓"),
            Just("kernel k arg#0 (p) [write]"),
            Just("\t"),
        ],
        1..5,
    )
    .prop_map(|parts| parts.concat())
}

/// Encode a full trace: header, dense string table, events, end marker.
fn encode(
    rank: usize,
    tiered: bool,
    budget: Option<usize>,
    labels: &[String],
    events: &[CusanEvent],
) -> Vec<u8> {
    let mut buf = Vec::new();
    Encoder::encode_header(&mut buf, rank, tiered, budget);
    let mut enc = Encoder::new();
    for (i, l) in labels.iter().enumerate() {
        enc.encode_str(&mut buf, i as u32, l);
    }
    for ev in events {
        enc.encode_event(&mut buf, ev);
    }
    enc.encode_end(&mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_and_canonical_reencode(
        rank in 0usize..8,
        tiered in any::<bool>(),
        budget in prop_oneof![Just(None), (1usize..4096).prop_map(Some)],
        labels in proptest::collection::vec(label_strategy(), 1..6),
        raw in proptest::collection::vec((0u8..14, 0u32..6, any::<bool>()), 0..40),
    ) {
        // Materialize events against the actual label count (the raw
        // tuples only carry variant/sid/flag seeds so the vec strategy
        // stays simple; regenerate deterministically from them).
        let nstrs = labels.len() as u32;
        let events: Vec<CusanEvent> = raw
            .iter()
            .map(|&(variant, seed, flag)| {
                let sid = StrId(seed % nstrs);
                let f = FiberId::from_index((seed % 7) as usize);
                let a = 0x4000u64.wrapping_mul(u64::from(seed) + 1);
                match variant {
                    0 => CusanEvent::FiberCreate { fiber: f, name: sid },
                    1 => CusanEvent::FiberSwitch { fiber: f, sync: flag },
                    2 => CusanEvent::FiberDestroy { fiber: f },
                    3 => CusanEvent::HappensBefore { key: SyncKey(a) },
                    4 => CusanEvent::HappensAfter { key: SyncKey(a ^ 0xff) },
                    5 => CusanEvent::ReadRange { addr: a, len: u64::from(seed) * 8, ctx: sid },
                    6 => CusanEvent::WriteRange { addr: !a, len: 8, ctx: sid },
                    7 => CusanEvent::Alloc { addr: a, bytes: 4096, kind: sid },
                    8 => CusanEvent::Free { addr: a, bytes: 4096 },
                    9 => CusanEvent::RequestBegin { serial: u64::from(seed) },
                    10 => CusanEvent::RequestComplete { serial: u64::from(seed) },
                    11 => CusanEvent::CounterBump { counter: sid, delta: u64::from(flag) },
                    12 => CusanEvent::ApiFault { call: sid, site: u64::from(seed) },
                    _ => CusanEvent::ScheduleChoice {
                        kind: sid,
                        arity: 2 + u64::from(seed),
                        chosen: u64::from(flag),
                    },
                }
            })
            .collect();
        let bytes = encode(rank, tiered, budget, &labels, &events);

        // 1. Decode: identical strings + events, End observed, bytes
        //    fully consumed.
        let (hdr_len, drank, dtiered, dbudget) = cusan::binio::decode_header(&bytes)
            .expect("header decodes")
            .expect("header complete");
        prop_assert_eq!(drank, rank);
        prop_assert_eq!(dtiered, tiered);
        prop_assert_eq!(dbudget, budget);
        let mut dec = Decoder::new();
        let mut pos = hdr_len;
        let mut got_strs: Vec<(u32, String)> = Vec::new();
        let mut got_events: Vec<CusanEvent> = Vec::new();
        let mut ended = false;
        while let Some((used, rec)) = dec.decode_record(&bytes[pos..]).expect("decode") {
            pos += used;
            match rec {
                BinRecord::Str { id, label } => got_strs.push((id, label)),
                BinRecord::Event(ev) => got_events.push(ev),
                BinRecord::End => {
                    ended = true;
                    break;
                }
            }
        }
        prop_assert!(ended, "end-of-trace marker not reached");
        prop_assert_eq!(pos, bytes.len(), "trailing bytes after decode");
        let want_strs: Vec<(u32, String)> = labels
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, l)| (i as u32, l))
            .collect();
        prop_assert_eq!(&got_strs, &want_strs);
        prop_assert_eq!(&got_events, &events);

        // 2. Re-encode what was decoded: byte-identical (canonical codec).
        let reencoded = encode(rank, tiered, budget, &labels, &got_events);
        prop_assert_eq!(&reencoded, &bytes);

        // 3. Transcode closure through the text twin.
        let text = transcode(&bytes[..], TraceFormat::Text).expect("binary → text");
        let back = transcode(&text[..], TraceFormat::Binary).expect("text → binary");
        prop_assert_eq!(&back, &bytes);
        let parsed = Trace::from_bytes(&bytes).expect("whole-trace parse");
        prop_assert_eq!(&parsed.events, &events);

        // 4. Truncation sweep: every strict prefix fails typed, never
        //    panics, never parses.
        for cut in 0..bytes.len() {
            match Trace::from_bytes(&bytes[..cut]) {
                Ok(_) => prop_assert!(false, "prefix of {cut} bytes parsed silently"),
                Err(e) => prop_assert!(
                    e.contains("truncated") || e.contains("empty trace"),
                    "prefix {cut}: untyped error {e:?}"
                ),
            }
        }
    }
}
