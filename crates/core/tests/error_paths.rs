//! API error paths must leave the detector untouched.
//!
//! The robustness contract (graceful degradation): a CUDA call that
//! returns an error performed no operation, so the checker must record
//! nothing for it — no fiber switches, no happens-before arcs, no range
//! annotations, no allocation tracking changes. Each test snapshots the
//! full detector-visible state (TSan counters, race count, event-pipeline
//! counters) around a failing call and asserts bit-for-bit equality.

use cuda_sim::{EventId, StreamFlags, StreamId};
use cusan::{CusanCuda, EventCounters, FaultPlan, Flavor, ToolCtx};
use kernel_ir::ast::ScalarTy;
use kernel_ir::builder::*;
use kernel_ir::{KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, DeviceId, MemError};
use std::rc::Rc;
use std::sync::Arc;
use tsan_rt::TsanStats;

struct World {
    cuda: CusanCuda,
    tools: Rc<ToolCtx>,
    fill: KernelId,
}

fn world() -> World {
    world_with_faults(FaultPlan::DISABLED)
}

fn world_with_faults(faults: FaultPlan) -> World {
    let space = Arc::new(AddressSpace::new());
    let mut reg = KernelRegistry::new();
    let mut b = KernelBuilder::new("fill");
    let p = b.ptr_param("p", ScalarTy::F64);
    let v = b.scalar_param("v", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |bb| bb.store(p, tid(), v.get()));
    let fill = reg.register_ir(b.finish()).unwrap();
    let mut config = Flavor::MustCusan.config();
    config.faults = faults;
    let tools = Rc::new(ToolCtx::new(0, config));
    let cuda = CusanCuda::new(DeviceId(0), space, Arc::new(reg), Rc::clone(&tools));
    World { cuda, tools, fill }
}

/// Everything the checker can observe about its own state.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    tsan: TsanStats,
    races: u64,
    events: EventCounters,
}

fn snapshot(w: &World) -> Snapshot {
    Snapshot {
        tsan: w.tools.tsan_stats(),
        races: w.tools.race_count(),
        events: w.tools.event_counters(),
    }
}

#[test]
fn double_free_is_typed_and_leaves_detector_unchanged() {
    let mut w = world();
    let d = w.cuda.malloc::<f64>(64).unwrap();
    w.cuda.free(d).unwrap();
    let before = snapshot(&w);
    let err = w.cuda.free(d).unwrap_err();
    assert!(
        matches!(err, cuda_sim::CudaError::Mem(MemError::Unmapped(_))),
        "double free must report the unmapped pointer, got {err}"
    );
    assert_eq!(snapshot(&w), before, "failed free must not annotate");
}

#[test]
fn free_of_interior_pointer_is_typed_and_leaves_detector_unchanged() {
    let mut w = world();
    let d = w.cuda.malloc::<f64>(64).unwrap();
    let before = snapshot(&w);
    let err = w.cuda.free(d.offset(8)).unwrap_err();
    assert!(
        matches!(err, cuda_sim::CudaError::Mem(MemError::NotABase(_))),
        "interior free must name the non-base pointer, got {err}"
    );
    assert_eq!(snapshot(&w), before);
    w.cuda.free(d).unwrap();
}

#[test]
fn launch_on_destroyed_stream_leaves_detector_unchanged() {
    let mut w = world();
    let d = w.cuda.malloc::<f64>(8).unwrap();
    let s = w.cuda.stream_create(StreamFlags::Default);
    w.cuda.stream_destroy(s).unwrap();
    let before = snapshot(&w);
    let err = w
        .cuda
        .launch(
            w.fill,
            LaunchGrid::cover(8, 8),
            s,
            vec![LaunchArg::Ptr(d), LaunchArg::F64(1.0), LaunchArg::I64(8)],
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            cuda_sim::CudaError::InvalidStream(_) | cuda_sim::CudaError::StreamDestroyed(_)
        ),
        "launch on destroyed stream must be a stream error, got {err}"
    );
    assert_eq!(
        snapshot(&w),
        before,
        "failed launch must record no kernel accesses"
    );
}

#[test]
fn event_record_on_invalid_event_leaves_detector_unchanged() {
    let mut w = world();
    let before = snapshot(&w);
    let err = w
        .cuda
        .event_record(EventId(99), StreamId::DEFAULT)
        .unwrap_err();
    assert!(
        matches!(err, cuda_sim::CudaError::InvalidEvent(99)),
        "got {err}"
    );
    assert_eq!(
        snapshot(&w),
        before,
        "failed record must not release the event arc"
    );
}

#[test]
fn event_record_on_destroyed_event_leaves_detector_unchanged() {
    let mut w = world();
    let e = w.cuda.event_create();
    w.cuda.event_destroy(e).unwrap();
    let before = snapshot(&w);
    let err = w.cuda.event_record(e, StreamId::DEFAULT).unwrap_err();
    assert!(
        matches!(err, cuda_sim::CudaError::InvalidEvent(_)),
        "got {err}"
    );
    assert_eq!(snapshot(&w), before);
}

#[test]
fn stream_query_after_destroy_leaves_detector_unchanged() {
    let mut w = world();
    let s = w.cuda.stream_create(StreamFlags::Default);
    w.cuda.stream_destroy(s).unwrap();
    let before = snapshot(&w);
    let err = w.cuda.stream_query(s).unwrap_err();
    assert!(
        matches!(
            err,
            cuda_sim::CudaError::InvalidStream(_) | cuda_sim::CudaError::StreamDestroyed(_)
        ),
        "got {err}"
    );
    assert_eq!(
        snapshot(&w),
        before,
        "failed query is not a synchronization"
    );
}

#[test]
fn injected_fault_on_malloc_registers_no_allocation() {
    // Differential: a world whose very first checked call faults vs. an
    // identical world that makes no call at all. The only admissible
    // difference is the ApiFault marker itself.
    let control = world();
    let mut w = world_with_faults(FaultPlan::with_rate(7, 1.0));
    let err = w.cuda.malloc::<f64>(64).unwrap_err();
    assert!(
        matches!(
            err,
            cuda_sim::CudaError::Mem(MemError::FaultInjected { call: "cudaMalloc" })
        ),
        "got {err}"
    );
    assert_eq!(
        w.cuda.space().stats().live_allocs,
        0,
        "failed malloc must register no allocation"
    );
    let mut after = snapshot(&w);
    assert_eq!(after.events.api_faults, 1);
    after.events.api_faults = 0;
    assert_eq!(
        after,
        snapshot(&control),
        "a faulted malloc must touch nothing but the fault marker"
    );
}
