//! CuSan scenario tests: CUDA-side race detection semantics (paper §IV).
//!
//! These cover the CUDA-only half of the correctness testsuite: kernel vs
//! host conflicts under every synchronization mechanism, legacy default
//! stream semantics, implicit synchronization of memory operations, and
//! the §V-B ablation.

use cuda_sim::{CopyKind, StreamFlags, StreamId};
use cusan::{CusanCuda, Flavor, ToolCtx};
use kernel_ir::ast::ScalarTy;
use kernel_ir::builder::*;
use kernel_ir::{KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, DeviceId, Ptr};
use std::rc::Rc;
use std::sync::Arc;

struct World {
    cuda: CusanCuda,
    tools: Rc<ToolCtx>,
    fill: KernelId,
    read: KernelId,
}

fn world(flavor: Flavor) -> World {
    let space = Arc::new(AddressSpace::new());
    let mut reg = KernelRegistry::new();

    let mut b = KernelBuilder::new("fill");
    let p = b.ptr_param("p", ScalarTy::F64);
    let v = b.scalar_param("v", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |bb| bb.store(p, tid(), v.get()));
    let fill = reg.register_ir(b.finish()).unwrap();

    let mut b = KernelBuilder::new("reduce_into");
    let out = b.ptr_param("out", ScalarTy::F64);
    let inp = b.ptr_param("in", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    let acc = b.let_(cf(0.0));
    b.if_(tid().eq_(ci(0)), |bb| {
        bb.for_(ci(0), n.get(), |bb, i| {
            bb.set(acc, acc.get() + load(inp, i.get()));
        });
        bb.store(out, ci(0), acc.get());
    });
    let read = reg.register_ir(b.finish()).unwrap();

    let tools = Rc::new(ToolCtx::new(0, flavor.config()));
    let cuda = CusanCuda::new(DeviceId(0), space, Arc::new(reg), Rc::clone(&tools));
    World {
        cuda,
        tools,
        fill,
        read,
    }
}

fn launch_fill(w: &mut World, p: Ptr, v: f64, n: u64, s: StreamId) {
    w.cuda
        .launch(
            w.fill,
            LaunchGrid::cover(n, 32),
            s,
            vec![
                LaunchArg::Ptr(p),
                LaunchArg::F64(v),
                LaunchArg::I64(n as i64),
            ],
        )
        .unwrap();
}

fn launch_reader(w: &mut World, out: Ptr, inp: Ptr, n: u64, s: StreamId) {
    w.cuda
        .launch(
            w.read,
            LaunchGrid::cover(1, 1),
            s,
            vec![
                LaunchArg::Ptr(out),
                LaunchArg::Ptr(inp),
                LaunchArg::I64(n as i64),
            ],
        )
        .unwrap();
}

#[test]
fn kernel_write_host_read_without_sync_races() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(64).unwrap();
    launch_fill(&mut w, d, 1.0, 64, StreamId::DEFAULT);
    // Host reads the buffer with NO synchronization (Fig. 6B shape).
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 64, "host read of d")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1, "{:#?}", w.tools.race_reports());
    let r = &w.tools.race_reports()[0];
    assert!(r.previous.ctx.contains("kernel fill"), "{r}");
}

#[test]
fn device_synchronize_prevents_race() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(64).unwrap();
    launch_fill(&mut w, d, 1.0, 64, StreamId::DEFAULT);
    w.cuda.device_synchronize().unwrap();
    let v = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 64, "host read of d")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0);
    assert_eq!(v, vec![1.0; 64], "synchronized read sees the kernel's data");
}

#[test]
fn stream_synchronize_prevents_race() {
    let mut w = world(Flavor::Cusan);
    let s = w.cuda.stream_create(StreamFlags::Default);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 2.0, 16, s);
    w.cuda.stream_synchronize(s).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0);
}

#[test]
fn wrong_stream_synchronize_still_races() {
    let mut w = world(Flavor::Cusan);
    let s1 = w.cuda.stream_create(StreamFlags::NonBlocking);
    let s2 = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 2.0, 16, s1);
    // Synchronizing the WRONG stream does not order the kernel's write.
    w.cuda.stream_synchronize(s2).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1);
}

#[test]
fn event_synchronize_prevents_race() {
    let mut w = world(Flavor::Cusan);
    let s = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let e = w.cuda.event_create();
    launch_fill(&mut w, d, 3.0, 16, s);
    w.cuda.event_record(e, s).unwrap();
    w.cuda.event_synchronize(e).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0);
}

#[test]
fn event_recorded_before_kernel_does_not_cover_it() {
    let mut w = world(Flavor::Cusan);
    let s = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let e = w.cuda.event_create();
    // Record BEFORE the kernel: synchronizing on it orders nothing useful.
    w.cuda.event_record(e, s).unwrap();
    launch_fill(&mut w, d, 3.0, 16, s);
    w.cuda.event_synchronize(e).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1);
}

#[test]
fn stream_query_counts_as_synchronization() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 1.5, 16, StreamId::DEFAULT);
    assert!(w.cuda.stream_query(StreamId::DEFAULT).unwrap());
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0);
}

#[test]
fn two_streams_conflict_without_sync() {
    let mut w = world(Flavor::Cusan);
    let s1 = w.cuda.stream_create(StreamFlags::NonBlocking);
    let s2 = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let out = w.cuda.malloc::<f64>(1).unwrap();
    launch_fill(&mut w, d, 1.0, 16, s1);
    launch_reader(&mut w, out, d, 16, s2); // reads d concurrently
    assert_eq!(w.tools.race_count(), 1);
}

#[test]
fn stream_wait_event_orders_two_streams() {
    let mut w = world(Flavor::Cusan);
    let s1 = w.cuda.stream_create(StreamFlags::NonBlocking);
    let s2 = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let out = w.cuda.malloc::<f64>(1).unwrap();
    let e = w.cuda.event_create();
    launch_fill(&mut w, d, 1.0, 16, s1);
    w.cuda.event_record(e, s1).unwrap();
    w.cuda.stream_wait_event(s2, e).unwrap();
    launch_reader(&mut w, out, d, 16, s2);
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}

#[test]
fn legacy_default_stream_barrier_orders_user_then_default() {
    // Fig. 3: kernel on blocking user stream, then kernel on default
    // stream touching the same buffer — the logical barrier orders them,
    // no race and no explicit synchronization needed.
    let mut w = world(Flavor::Cusan);
    let s1 = w.cuda.stream_create(StreamFlags::Default);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let out = w.cuda.malloc::<f64>(1).unwrap();
    launch_fill(&mut w, d, 1.0, 16, s1);
    launch_reader(&mut w, out, d, 16, StreamId::DEFAULT);
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}

#[test]
fn legacy_default_stream_barrier_orders_default_then_user() {
    let mut w = world(Flavor::Cusan);
    let s1 = w.cuda.stream_create(StreamFlags::Default);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let out = w.cuda.malloc::<f64>(1).unwrap();
    launch_fill(&mut w, d, 1.0, 16, StreamId::DEFAULT);
    launch_reader(&mut w, out, d, 16, s1);
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}

#[test]
fn non_blocking_stream_escapes_legacy_barrier() {
    let mut w = world(Flavor::Cusan);
    let nb = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let out = w.cuda.malloc::<f64>(1).unwrap();
    launch_fill(&mut w, d, 1.0, 16, nb);
    launch_reader(&mut w, out, d, 16, StreamId::DEFAULT);
    assert_eq!(
        w.tools.race_count(),
        1,
        "non-blocking stream has no barrier"
    );
}

#[test]
fn transitivity_fig3_sync_on_user_stream_covers_chain() {
    // K1 on s1, K0 on default, K2 on s2 (all blocking). Host syncs only
    // s2; via the barrier chain, K1 and K0 are also ordered before the
    // host's access (Fig. 3's "after a host synchronization on K2, K1 and
    // K0 also completed").
    let mut w = world(Flavor::Cusan);
    let s1 = w.cuda.stream_create(StreamFlags::Default);
    let s2 = w.cuda.stream_create(StreamFlags::Default);
    let a = w.cuda.malloc::<f64>(8).unwrap();
    let b = w.cuda.malloc::<f64>(8).unwrap();
    let c = w.cuda.malloc::<f64>(1).unwrap();
    launch_fill(&mut w, a, 1.0, 8, s1); // K1
    launch_fill(&mut w, b, 2.0, 8, StreamId::DEFAULT); // K0
    launch_reader(&mut w, c, b, 8, s2); // K2
    w.cuda.stream_synchronize(s2).unwrap();
    // Host touches ALL buffers: everything must be ordered.
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), a, 8, "host a")
        .unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), b, 8, "host b")
        .unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), c, 1, "host c")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}

#[test]
fn blocking_memcpy_d2h_synchronizes_host() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let h = w.cuda.host_malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 4.0, 16, StreamId::DEFAULT);
    w.cuda.memcpy(h, d, 128, CopyKind::DeviceToHost).unwrap();
    // Host may now read both sides without a race.
    let v = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), h, 16, "host read h")
        .unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read d")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
    assert_eq!(v, vec![4.0; 16]);
}

#[test]
fn async_memcpy_does_not_synchronize_host() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let h = w.cuda.host_alloc::<f64>(16).unwrap(); // pinned
    launch_fill(&mut w, d, 4.0, 16, StreamId::DEFAULT);
    w.cuda
        .memcpy_async(h, d, 128, CopyKind::DeviceToHost, StreamId::DEFAULT)
        .unwrap();
    // Reading the destination without waiting is a race with the copy.
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), h, 16, "host read h")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1);
}

#[test]
fn memset_on_device_memory_does_not_synchronize() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    w.cuda.memset(d, 0, 128).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(
        w.tools.race_count(),
        1,
        "device memset is async w.r.t. host"
    );
}

#[test]
fn memset_on_pinned_memory_synchronizes() {
    let mut w = world(Flavor::Cusan);
    let p = w.cuda.host_alloc::<f64>(16).unwrap();
    w.cuda.memset(p, 0, 128).unwrap();
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), p, 16, "host read")
        .unwrap();
    assert_eq!(
        w.tools.race_count(),
        0,
        "pinned memset blocks the host (paper §III-C)"
    );
}

#[test]
fn managed_memory_host_access_during_kernel_races() {
    let mut w = world(Flavor::Cusan);
    let m = w.cuda.malloc_managed::<f64>(32).unwrap();
    launch_fill(&mut w, m, 1.0, 32, StreamId::DEFAULT);
    // Unsynchronized host write to managed memory (paper §III-C).
    w.tools
        .host_write_at::<f64>(w.cuda.space(), m, 9.0, "host write managed")
        .unwrap();
    assert_eq!(w.tools.race_count(), 1);
}

#[test]
fn ablation_no_access_tracking_reports_nothing() {
    // §V-B: removing memory annotations (keeping the rest) removes both
    // the overhead and the reports.
    let mut cfg = Flavor::Cusan.config();
    cfg.track_access_ranges = false;
    let space = Arc::new(AddressSpace::new());
    let mut reg = KernelRegistry::new();
    let mut b = KernelBuilder::new("fill");
    let p = b.ptr_param("p", ScalarTy::F64);
    let v = b.scalar_param("v", ScalarTy::F64);
    b.store(p, tid(), v.get());
    let fill = reg.register_ir(b.finish()).unwrap();
    let tools = Rc::new(ToolCtx::new(0, cfg));
    let mut cuda = CusanCuda::new(DeviceId(0), space, Arc::new(reg), Rc::clone(&tools));
    let d = cuda.malloc::<f64>(8).unwrap();
    cuda.launch(
        fill,
        LaunchGrid::cover(8, 8),
        StreamId::DEFAULT,
        vec![LaunchArg::Ptr(d), LaunchArg::F64(1.0)],
    )
    .unwrap();
    let _ = tools
        .host_read_slice::<f64>(cuda.space(), d, 8, "host read")
        .unwrap();
    assert_eq!(tools.race_count(), 0);
    let s = tools.tsan_stats();
    assert!(s.happens_before > 0, "fibers and arcs still maintained");
    assert_eq!(s.write_range_calls, 0, "no range annotations from CuSan");
}

#[test]
fn vanilla_flavor_performs_no_tsan_work() {
    let mut w = world(Flavor::Vanilla);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 1.0, 16, StreamId::DEFAULT);
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    let s = w.tools.tsan_stats();
    assert_eq!(s.fiber_switches, 0);
    assert_eq!(s.happens_before, 0);
    assert_eq!(s.read_range_calls, 0);
    assert_eq!(w.tools.race_count(), 0);
}

#[test]
fn free_after_pending_kernel_is_ordered() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 1.0, 16, StreamId::DEFAULT);
    // cudaFree device-syncs first, so the write annotation cannot race.
    w.cuda.free(d).unwrap();
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}

#[test]
fn table1_counter_semantics() {
    // Kernel launches start arcs (HB); sync calls terminate them (HA);
    // a blocking memcpy does both — the relations behind Table I.
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let h = w.cuda.host_malloc::<f64>(16).unwrap();
    let before = w.tools.tsan_stats();

    launch_fill(&mut w, d, 1.0, 16, StreamId::DEFAULT);
    let after_kernel = w.tools.tsan_stats();
    assert_eq!(after_kernel.happens_before - before.happens_before, 1);
    assert_eq!(after_kernel.happens_after, before.happens_after);

    w.cuda.device_synchronize().unwrap();
    let after_sync = w.tools.tsan_stats();
    assert_eq!(after_sync.happens_before, after_kernel.happens_before);
    assert!(after_sync.happens_after > after_kernel.happens_after);

    w.cuda.memcpy(h, d, 128, CopyKind::DeviceToHost).unwrap();
    let after_copy = w.tools.tsan_stats();
    assert_eq!(after_copy.happens_before - after_sync.happens_before, 1);
    assert_eq!(after_copy.happens_after - after_sync.happens_after, 1);
    assert_eq!(after_copy.read_range_calls - after_sync.read_range_calls, 1);
    assert_eq!(
        after_copy.write_range_calls - after_sync.write_range_calls,
        1
    );

    let c = w.cuda.counters();
    assert_eq!(c.kernel_calls, 1);
    assert_eq!(c.memcpy_calls, 1);
    assert_eq!(c.sync_calls, 1);
}

#[test]
fn event_query_true_is_a_synchronization() {
    let mut w = world(Flavor::Cusan);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    let e = w.cuda.event_create();
    launch_fill(&mut w, d, 1.0, 16, StreamId::DEFAULT);
    w.cuda.event_record(e, StreamId::DEFAULT).unwrap();
    // Force completion through a query-style busy wait, then poll the
    // event: a true result carries the happens-after edge.
    assert!(w.cuda.stream_query(StreamId::DEFAULT).unwrap());
    assert!(w.cuda.event_query(e).unwrap());
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0);
}

#[test]
fn free_async_waits_only_for_its_stream() {
    let mut w = world(Flavor::Cusan);
    let s = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 1.0, 16, s);
    // Stream-ordered free: forces s, then releases.
    w.cuda.device_mut().free_async(d, s).unwrap();
    assert!(w.cuda.space().attributes(d).is_err(), "released");
}

#[test]
fn stream_destroy_synchronizes_its_work() {
    let mut w = world(Flavor::Cusan);
    let s = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    launch_fill(&mut w, d, 4.0, 16, s);
    w.cuda.stream_destroy(s).unwrap();
    let v = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(v[0], 4.0);
    assert_eq!(w.tools.race_count(), 0, "{:#?}", w.tools.race_reports());
}

#[test]
fn failed_calls_leave_no_phantom_annotations() {
    // Launching on a destroyed stream must error WITHOUT annotating: a
    // later legitimate host access must not race against a kernel that
    // never ran.
    let mut w = world(Flavor::Cusan);
    let s = w.cuda.stream_create(StreamFlags::NonBlocking);
    let d = w.cuda.malloc::<f64>(16).unwrap();
    w.cuda.stream_destroy(s).unwrap();
    let before = w.tools.tsan_stats();
    assert!(w
        .cuda
        .launch(
            w.fill,
            LaunchGrid::linear(16),
            s,
            vec![LaunchArg::Ptr(d), LaunchArg::F64(1.0), LaunchArg::I64(16)],
        )
        .is_err());
    assert!(w
        .cuda
        .memcpy_async(d, d, 64, CopyKind::DeviceToDevice, s)
        .is_err());
    assert!(w.cuda.memset_async(d, 0, 64, s).is_err());
    let after = w.tools.tsan_stats();
    assert_eq!(before.write_range_calls, after.write_range_calls);
    assert_eq!(before.happens_before, after.happens_before);
    // And the buffer is freely accessible.
    let _ = w
        .tools
        .host_read_slice::<f64>(w.cuda.space(), d, 16, "host read")
        .unwrap();
    assert_eq!(w.tools.race_count(), 0);
}
