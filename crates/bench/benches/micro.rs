//! Criterion microbenchmarks for the design choices DESIGN.md calls out:
//!
//! * shadow-memory range tracking cost vs range length (the Fig. 12
//!   driver: cost must be linear in bytes with a small constant),
//! * vector-clock join cost vs live fiber count,
//! * fiber switch + happens-before/after annotation cost,
//! * TypeART pointer-query cost,
//! * checked vs unchecked kernel-launch overhead (the fixed per-call cost
//!   that dominates when domains are small, as in TeaLeaf).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuda_sim::StreamId;
use cusan::{CusanCuda, Flavor, ToolCtx};
use cusan_apps::AppKernels;
use kernel_ir::{LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, DeviceId, MemKind, Ptr};
use std::hint::black_box;
use std::rc::Rc;
use std::sync::Arc;
use tsan_rt::{FiberId, SyncKey, TsanRuntime, VectorClock};
use typeart_rt::{TypeId, TypeartRuntime};

fn bench_shadow_range(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsan_write_range");
    for len in [64u64, 1 << 10, 1 << 16, 1 << 20] {
        g.throughput(Throughput::Bytes(len));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut rt = TsanRuntime::new("bench");
            let ctx = rt.intern_ctx("bench write");
            b.iter(|| rt.write_range(black_box(0x10_0000), len, ctx));
        });
    }
    g.finish();
}

/// The tiered-shadow fast paths (DESIGN.md "Shadow tiers"): cold
/// page-aligned ranges hit the summary tier, repeated identical ranges hit
/// the same-state cache, and a partial overlap pays the unfold. Each case
/// runs tiered and untiered so the win (and the unfold cost ceiling) stays
/// visible in `cargo bench` output; `bench_shadow` records the same cases
/// to BENCH_shadow.json for trajectory tracking.
fn bench_shadow_access_range(c: &mut Criterion) {
    use criterion::BatchSize;
    const LEN: u64 = 1 << 20;

    let mut g = c.benchmark_group("shadow_access_range");
    for (name, tiered) in [("tiered", true), ("flat", false)] {
        g.throughput(Throughput::Bytes(LEN));
        // Cold: every page is touched for the first time by a
        // page-covering write (one summary store per page vs 512 walks).
        g.bench_function(BenchmarkId::new("cold_1MiB", name), |b| {
            b.iter_batched(
                || {
                    let mut rt = TsanRuntime::with_shadow_tiering("bench", tiered);
                    let ctx = rt.intern_ctx("cold write");
                    (rt, ctx)
                },
                |(mut rt, ctx)| {
                    rt.write_range(black_box(0x10_0000), LEN, ctx);
                    rt
                },
                BatchSize::LargeInput,
            );
        });
        // Hot: the Jacobi/TeaLeaf loop shape — the same buffer
        // re-annotated with an unchanged epoch.
        g.bench_function(BenchmarkId::new("repeated_1MiB", name), |b| {
            let mut rt = TsanRuntime::with_shadow_tiering("bench", tiered);
            let ctx = rt.intern_ctx("repeat write");
            rt.write_range(0x10_0000, LEN, ctx);
            b.iter(|| rt.write_range(black_box(0x10_0000), LEN, ctx));
        });
        // Unfold: summarize a page, then split it with a partial access.
        g.bench_function(BenchmarkId::new("partial_unfold_4KiB", name), |b| {
            b.iter_batched(
                || {
                    let mut rt = TsanRuntime::with_shadow_tiering("bench", tiered);
                    let ctx = rt.intern_ctx("unfold");
                    rt.write_range(0x10_0000, 4096, ctx);
                    (rt, ctx)
                },
                |(mut rt, ctx)| {
                    rt.write_range(black_box(0x10_0040), 128, ctx);
                    rt
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_clock_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_clock_join");
    for fibers in [4usize, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(fibers), &fibers, |b, &n| {
            let mut a = VectorClock::new();
            let mut other = VectorClock::new();
            for i in 0..n {
                a.set(FiberId::from_index(i), (i as u32) % 17);
                other.set(FiberId::from_index(i), (i as u32) % 23);
            }
            b.iter(|| {
                let mut x = a.clone();
                x.join(black_box(&other));
                black_box(x.get(FiberId::from_index(n - 1)))
            });
        });
    }
    g.finish();
}

fn bench_fiber_switch_and_arc(c: &mut Criterion) {
    c.bench_function("fiber_switch_hb_ha_roundtrip", |b| {
        let mut rt = TsanRuntime::new("bench");
        let fiber = rt.create_fiber("stream");
        let key = SyncKey(42);
        b.iter(|| {
            rt.switch_to_fiber_sync(fiber);
            rt.annotate_happens_before(key);
            rt.switch_to_fiber(FiberId::HOST);
            rt.annotate_happens_after(key);
        });
    });
}

fn bench_typeart_query(c: &mut Criterion) {
    c.bench_function("typeart_extent_query", |b| {
        let mut ta = TypeartRuntime::new();
        for i in 0..1024u64 {
            ta.on_alloc(
                Ptr(0x1_0000 + i * 0x1000),
                TypeId::F64,
                64,
                MemKind::Managed,
            )
            .unwrap();
        }
        b.iter(|| black_box(ta.extent_of(Ptr(0x1_0000 + 512 * 0x1000 + 64))));
    });
}

fn bench_space_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_mem_copy");
    for len in [1u64 << 10, 1 << 18] {
        g.throughput(Throughput::Bytes(len));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let space = AddressSpace::new();
            let a = space.alloc(MemKind::Device(DeviceId(0)), len).unwrap();
            let h = space.alloc(MemKind::HostPinned, len).unwrap();
            b.iter(|| space.copy(black_box(h), black_box(a), len).unwrap());
        });
    }
    g.finish();
}

fn bench_launch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_launch_and_sync");
    for (name, flavor) in [("vanilla", Flavor::Vanilla), ("cusan", Flavor::Cusan)] {
        g.bench_function(name, |b| {
            let k = AppKernels::shared();
            let tools = Rc::new(ToolCtx::new(0, flavor.config()));
            let mut cuda = CusanCuda::new(
                DeviceId(0),
                Arc::new(AddressSpace::new()),
                Arc::clone(&k.registry),
                tools,
            );
            let d = cuda.malloc::<f64>(256).unwrap();
            b.iter(|| {
                cuda.launch(
                    k.fill,
                    LaunchGrid::linear(256),
                    StreamId::DEFAULT,
                    vec![LaunchArg::Ptr(d), LaunchArg::F64(1.0), LaunchArg::I64(256)],
                )
                .unwrap();
                cuda.device_synchronize().unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_shadow_range,
    bench_shadow_access_range,
    bench_clock_join,
    bench_fiber_switch_and_arc,
    bench_typeart_query,
    bench_space_access,
    bench_launch_overhead
);
criterion_main!(benches);
