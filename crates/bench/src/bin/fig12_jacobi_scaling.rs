//! Fig. 12 — Jacobi relative runtime overhead vs global domain size, with
//! the total bytes tracked through `tsan_read_range`/`tsan_write_range`.
//!
//! The paper sweeps 512×256 … 8192×4096 and shows CuSan's overhead
//! growing with the tracked-memory volume (from ~6× to ~36× and beyond).
//! The default sweep here stops at 2048×1024 to keep the run short; set
//! `CUSAN_BENCH_FULL=1` for the two largest domains.

use cusan::Flavor;
use cusan_apps::{run_jacobi, JacobiConfig};
use cusan_bench::{banner, bench_runs, env_u64, measure, rel};

fn main() {
    let runs = bench_runs();
    let ranks = env_u64("CUSAN_BENCH_RANKS", 2) as usize;
    let iters = env_u64("CUSAN_BENCH_JACOBI_ITERS", 20) as u32;
    let mut domains = vec![(512u64, 256u64), (1024, 512), (2048, 1024)];
    if env_u64("CUSAN_BENCH_FULL", 0) == 1 {
        domains.push((4096, 2048));
        domains.push((8192, 4096));
    }
    banner(
        "Fig. 12 — Jacobi relative runtime overhead vs global domain size",
        &format!("{ranks} ranks, {iters} iterations, mean of {runs} runs (+1 warmup); right columns: total tracked bytes, all ranks"),
    );

    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>14}",
        "Domain", "Rel.Runtime", "TSan Read", "TSan Write", "Vanilla[s]"
    );
    for (nx, ny) in domains {
        let cfg = JacobiConfig {
            nx,
            ny,
            ranks,
            iters,
            ..JacobiConfig::default()
        };
        let vanilla = measure(runs, || run_jacobi(&cfg, Flavor::Vanilla).elapsed);
        let mut read_mb = 0.0;
        let mut write_mb = 0.0;
        let cusan = measure(runs, || {
            let r = run_jacobi(&cfg, Flavor::Cusan);
            let ts = r.outcome.ranks.iter().fold((0u64, 0u64), |acc, rk| {
                (acc.0 + rk.tsan.read_bytes, acc.1 + rk.tsan.write_bytes)
            });
            read_mb = ts.0 as f64 / 1e6;
            write_mb = ts.1 as f64 / 1e6;
            r.elapsed
        });
        println!(
            "{:<12} {:>11.2}x {:>11.1} MB {:>11.1} MB {:>14.3}",
            format!("{nx}x{ny}"),
            rel(cusan, vanilla),
            read_mb,
            write_mb,
            vanilla.as_secs_f64()
        );
    }
    println!(
        "\npaper (V100): overhead grows with the domain from ~6x (512x256) to ~36x (8192x4096),"
    );
    println!(
        "tracking 10^3..10^6 MB; the monotone overhead-vs-tracked-bytes relation is the target."
    );
}
