//! Table I — CUDA and TSan runtime event counters for one MPI process, as
//! reported by CuSan.
//!
//! Paper values (for their model sizes): Jacobi — 2 streams, 2 memsets,
//! 602 memcpys, 900 syncs, 1200 kernels; 3622 fiber switches, 1804 HB,
//! 1515 HA, 2102/2403 read/write ranges, 19.7 MB / 16.4 MB average range
//! sizes. TeaLeaf — 1 stream, 36 memsets, 102 memcpys, 530 syncs, 767
//! kernels; 1882 switches, 905 HB, 632 HA, 623/1074 ranges, ~16/17 KB
//! averages.
//!
//! The reproduction target is the *relations*: Jacobi has 2 streams and
//! huge average range sizes (large domain); TeaLeaf has 1 stream, HB ≈
//! kernels + memcpys + memsets, HA ≈ syncs + memcpys, and many more
//! fibers than streams (one per non-blocking MPI request).

use cuda_sim::CudaCounters;
use cusan::Flavor;
use cusan_apps::{run_jacobi, run_tealeaf};
use cusan_bench::{banner, jacobi_config, tealeaf_config};
use tsan_rt::TsanStats;

fn print_rows(jacobi: (&CudaCounters, &TsanStats), tealeaf: (&CudaCounters, &TsanStats)) {
    let (jc, jt) = jacobi;
    let (tc, tt) = tealeaf;
    println!("{:<38} {:>14} {:>14}", "Metric", "Jacobi", "TeaLeaf");
    println!("{:-<68}", "");
    println!(
        "{:<38} {:>14} {:>14}",
        "CUDA  Stream", jc.streams, tc.streams
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "CUDA  Memset", jc.memset_calls, tc.memset_calls
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "CUDA  Memcpy", jc.memcpy_calls, tc.memcpy_calls
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "CUDA  Synchronization calls", jc.sync_calls, tc.sync_calls
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "CUDA  Kernel calls", jc.kernel_calls, tc.kernel_calls
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Switch To Fiber", jt.fiber_switches, tt.fiber_switches
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  AnnotateHappensBefore", jt.happens_before, tt.happens_before
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  AnnotateHappensAfter", jt.happens_after, tt.happens_after
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Memory Read Range", jt.read_range_calls, tt.read_range_calls
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Memory Write Range", jt.write_range_calls, tt.write_range_calls
    );
    println!(
        "{:<38} {:>14.2} {:>14.2}",
        "TSan  Memory Read Size [avg KB]",
        jt.avg_read_kb(),
        tt.avg_read_kb()
    );
    println!(
        "{:<38} {:>14.2} {:>14.2}",
        "TSan  Memory Write Size [avg KB]",
        jt.avg_write_kb(),
        tt.avg_write_kb()
    );
    // Shadow-tier counters (not in the paper's table; they make the
    // whole-range fast paths observable — see DESIGN.md "Shadow tiers").
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Shadow fast-path hits", jt.fastpath_hits, tt.fastpath_hits
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Shadow page summaries", jt.page_summaries_stored, tt.page_summaries_stored
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Shadow page unfolds", jt.page_unfolds, tt.page_unfolds
    );
    // Epoch-compression and arena counters (see DESIGN.md "Shadow arena
    // & epoch clocks"): joins skipped by the scalar fast paths vs full
    // O(fibers) joins actually performed, and arena recycling activity.
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Epoch fast acquires", jt.epoch_fast_acquires, tt.epoch_fast_acquires
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Epoch fast releases", jt.epoch_fast_releases, tt.epoch_fast_releases
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Full clock joins", jt.full_clock_joins, tt.full_clock_joins
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Arena pages reused", jt.arena_pages_reused, tt.arena_pages_reused
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Arena slabs allocated", jt.arena_slabs_allocated, tt.arena_slabs_allocated
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "TSan  Arena pages evicted", jt.arena_pages_evicted, tt.arena_pages_evicted
    );
}

fn main() {
    let jc = jacobi_config();
    let tc = tealeaf_config();
    banner(
        "Table I — CUDA and TSan event counters for one MPI process (CuSan flavor)",
        &format!(
            "Jacobi {}x{} x{} iters | TeaLeaf {}x{} x{} steps | rank 0 of {}",
            jc.nx, jc.ny, jc.iters, tc.nx, tc.ny, tc.steps, jc.ranks
        ),
    );
    let j = run_jacobi(&jc, Flavor::Cusan);
    let t = run_tealeaf(&tc, Flavor::Cusan);
    let jr = &j.outcome.ranks[0];
    let tr = &t.outcome.ranks[0];
    print_rows((&jr.cuda, &jr.tsan), (&tr.cuda, &tr.tsan));

    // The structural relations the paper calls out in the Table I text.
    println!();
    println!(
        "TeaLeaf relation HB = kernels + memcpys + memsets: {} = {} + {} + {} -> {}",
        tr.tsan.happens_before,
        tr.cuda.kernel_calls,
        tr.cuda.memcpy_calls,
        tr.cuda.memset_calls,
        if tr.tsan.happens_before
            == tr.cuda.kernel_calls + tr.cuda.memcpy_calls + tr.cuda.memset_calls
        {
            "holds"
        } else {
            "differs (see EXPERIMENTS.md)"
        }
    );
    println!(
        "Jacobi avg range size / TeaLeaf avg range size: {:.0}x (paper: ~1000x)",
        jr.tsan.avg_read_kb() / tr.tsan.avg_read_kb().max(1e-9)
    );
}
