//! Fig. 10 — relative runtime overhead of the tool flavors.
//!
//! Paper reference (V100 cluster): Jacobi — TSan 2.27×, MUST 4.63×,
//! CuSan 36.06×, MUST & CuSan 37.89×; TeaLeaf — 1.01×, 4.2×, 3.77×,
//! 6.97×. Vanilla runtimes 1.35 s and 0.75 s.
//!
//! Expected shape here: CuSan ≫ TSan/MUST on the large-domain Jacobi
//! (overhead ∝ tracked bytes), far smaller factors on the small-domain
//! TeaLeaf, and MUST & CuSan ≥ CuSan.

use cusan::Flavor;
use cusan_apps::{run_jacobi, run_tealeaf};
use cusan_bench::{banner, bench_runs, jacobi_config, measure, rel, tealeaf_config, INSTRUMENTED};

fn main() {
    let runs = bench_runs();
    let jc = jacobi_config();
    let tc = tealeaf_config();
    banner(
        "Fig. 10 — relative runtime overhead [T_flavor / T_vanilla]",
        &format!(
            "Jacobi {}x{} x{} iters | TeaLeaf {}x{} x{} steps | {} ranks | mean of {} runs (+1 warmup)",
            jc.nx, jc.ny, jc.iters, tc.nx, tc.ny, tc.steps, jc.ranks, runs
        ),
    );

    let jacobi_vanilla = measure(runs, || run_jacobi(&jc, Flavor::Vanilla).elapsed);
    let tealeaf_vanilla = measure(runs, || run_tealeaf(&tc, Flavor::Vanilla).elapsed);
    println!(
        "Vanilla runtime: {:.3} s (Jacobi), {:.3} s (TeaLeaf)\n",
        jacobi_vanilla.as_secs_f64(),
        tealeaf_vanilla.as_secs_f64()
    );
    println!("{:<14} {:>10} {:>10}", "Flavor", "Jacobi", "TeaLeaf");
    println!("{:<14} {:>10} {:>10}", "Vanilla", "1.00x", "1.00x");
    for flavor in INSTRUMENTED {
        let j = measure(runs, || run_jacobi(&jc, flavor).elapsed);
        let t = measure(runs, || run_tealeaf(&tc, flavor).elapsed);
        println!(
            "{:<14} {:>9.2}x {:>9.2}x",
            flavor.to_string(),
            rel(j, jacobi_vanilla),
            rel(t, tealeaf_vanilla)
        );
    }
    println!("\npaper (V100):  Jacobi  TSan 2.27x  MUST 4.63x  CuSan 36.06x  MUST&CuSan 37.89x");
    println!("               TeaLeaf TSan 1.01x  MUST 4.20x  CuSan  3.77x  MUST&CuSan  6.97x");
}
