//! Schedule-exploration throughput and effectiveness (the E17 numbers).
//!
//! Two workloads, both over 2-rank worlds:
//!
//!   * **Planted race** — the testsuite's
//!     `explore/wildcard_match_unsynced_branch_nok` program, whose
//!     wildcard-receive race the default schedule provably never
//!     reports. The bench asserts the default run is clean, explores
//!     the schedule space under a budget, and records at which executed
//!     schedule the race first surfaced.
//!   * **Chaos twin** — the TeaLeaf chaos body under a fixed fault
//!     seed, the workload the soak's explored slice runs. Used for the
//!     throughput number (schedules/sec) and for the dedup/cut rates on
//!     a schedule space with real `StreamDrain`/`CollectiveFold`
//!     decisions.
//!
//! Writes `BENCH_explore.json` to the current directory (override with
//! `CUSAN_BENCH_EXPLORE_JSON`) — uploaded by the `explore-smoke` CI job
//! so exploration regressions (missed race, collapsing dedup/cut rates,
//! throughput cliffs) show up as artifact diffs.

use cusan::{FaultPlan, Flavor, ToolConfig};
use cusan_apps::testsuite::{outcome_digest, run_case_scheduled, wildcard_schedule_race};
use cusan_apps::{run_chaos_tealeaf_scheduled, ChaosConfig};
use cusan_bench::{banner, bench_runs, env_u64, measure};
use explore::{explore, ExploreStats};
use std::sync::Arc;
use std::time::Instant;

/// Fraction of executed schedules that landed on an already-seen
/// outcome digest.
fn dedup_rate(s: &ExploreStats) -> f64 {
    s.dedup_hits as f64 / (s.schedules_run.max(1)) as f64
}

/// Fraction of candidate schedules never executed thanks to the
/// signature (sleep-set) cut: cut alternatives over cut + executed.
fn cut_rate(s: &ExploreStats) -> f64 {
    s.cut_alternatives as f64 / (s.cut_alternatives + s.schedules_run).max(1) as f64
}

fn main() {
    let runs = bench_runs();
    let race_budget = env_u64("CUSAN_BENCH_EXPLORE_BUDGET", 16) as usize;
    let chaos_budget = env_u64("CUSAN_BENCH_EXPLORE_CHAOS_BUDGET", 12) as usize;
    banner(
        "schedule exploration — planted race + chaos twin",
        &format!(
            "budgets: {race_budget} (planted race) / {chaos_budget} (chaos) | \
             mean of {runs} runs (+1 warmup)"
        ),
    );

    // Planted race: the default schedule must be clean, exploration must
    // find the race, and we record how many schedules that took.
    let case = wildcard_schedule_race();
    let mut executed = 0usize;
    let mut found_at = 0usize; // 0 = never found
    let race_report = explore(3, race_budget, |plan| {
        let out = run_case_scheduled(&case, Arc::clone(plan));
        executed += 1;
        if found_at == 0 && out.total_races() > 0 {
            found_at = executed;
        }
        (outcome_digest(&out), out.total_races())
    });
    assert_eq!(
        race_report.runs[0].value, 0,
        "default schedule unexpectedly reported the planted race"
    );
    assert!(
        found_at > 0,
        "exploration missed the planted race within budget {race_budget}: {:?}",
        race_report.stats
    );
    println!(
        "planted race: found at schedule {found_at}/{} ({} unique outcomes, \
         {} dedup hits, {} cut, exhausted: {})",
        race_report.stats.schedules_run,
        race_report.stats.unique_outcomes,
        race_report.stats.dedup_hits,
        race_report.stats.cut_alternatives,
        race_report.stats.frontier_exhausted,
    );

    // Chaos twin: throughput + rates on a real multi-choice-point space.
    let cfg = ChaosConfig::default();
    let chaos_tools = || {
        let mut t: ToolConfig = Flavor::MustCusan.config();
        t.faults = FaultPlan::with_rate(1, 0.01);
        t
    };
    let run_chaos_sweep = || {
        let started = Instant::now();
        let report = explore(cfg.ranks + 1, chaos_budget, |plan| {
            let out = run_chaos_tealeaf_scheduled(&cfg, chaos_tools(), Some(Arc::clone(plan)));
            (outcome_digest(&out), ())
        });
        (started.elapsed(), report.stats)
    };
    let (_, chaos_stats) = run_chaos_sweep();
    let elapsed = measure(runs, || run_chaos_sweep().0);
    let schedules_per_sec = chaos_stats.schedules_run as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "chaos twin: {} schedules in {elapsed:.2?} ({schedules_per_sec:.1} schedules/s), \
         dedup rate {:.2}, cut rate {:.2}",
        chaos_stats.schedules_run,
        dedup_rate(&chaos_stats),
        cut_rate(&chaos_stats),
    );

    // Hand-rolled JSON: the workspace is offline, so no serde.
    let json = format!(
        "{{\n  \"benchmark\": \"explore\",\n  \"runs\": {runs},\n  \
         \"race_budget\": {race_budget},\n  \"race_found_at_schedule\": {found_at},\n  \
         \"race_schedules_run\": {},\n  \"race_unique_outcomes\": {},\n  \
         \"race_dedup_rate\": {:.3},\n  \"race_cut_rate\": {:.3},\n  \
         \"race_frontier_exhausted\": {},\n  \"chaos_budget\": {chaos_budget},\n  \
         \"chaos_schedules_run\": {},\n  \"chaos_unique_outcomes\": {},\n  \
         \"chaos_dedup_rate\": {:.3},\n  \"chaos_cut_rate\": {:.3},\n  \
         \"chaos_sweep_ns\": {},\n  \"schedules_per_sec\": {schedules_per_sec:.1}\n}}\n",
        race_report.stats.schedules_run,
        race_report.stats.unique_outcomes,
        dedup_rate(&race_report.stats),
        cut_rate(&race_report.stats),
        race_report.stats.frontier_exhausted,
        chaos_stats.schedules_run,
        chaos_stats.unique_outcomes,
        dedup_rate(&chaos_stats),
        cut_rate(&chaos_stats),
        elapsed.as_nanos(),
    );
    let path =
        std::env::var("CUSAN_BENCH_EXPLORE_JSON").unwrap_or_else(|_| "BENCH_explore.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
