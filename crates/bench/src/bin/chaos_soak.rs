//! Chaos soak: a deterministic fault-seed sweep over the chaos twins of
//! Jacobi and TeaLeaf (`cusan_apps::chaos`).
//!
//! For every seed, each app runs under a seeded [`FaultPlan`] (every 4th
//! seed additionally under a shadow-page budget, exercising counted
//! best-effort degradation) and the soak asserts the robustness
//! contract end to end:
//!
//! * **No panics**: every rank either finishes or returns a typed error;
//!   the harness always collects outcomes.
//! * **Per-seed determinism**: a same-seed re-run produces identical
//!   per-rank results, race reports, and byte-identical traces.
//! * **Replay fidelity under faults**: replaying each recorded trace
//!   reproduces the live race reports, detector stats, and event
//!   counters bit-for-bit — the `ApiFault` records carry the fault
//!   schedule, the header carries the budget.
//! * **Clean teardown**: a fault-free baseline leaves zero live
//!   allocations; faulted runs leak at most what their failed frees
//!   abandoned.
//!
//! Usage: `chaos_soak [seeds]` (default 32; the CI smoke job passes 8,
//! or set `CHAOS_SEEDS`).

use cusan::{replay, FaultPlan, Flavor, ToolConfig, Trace};
use cusan_apps::testsuite::outcome_digest;
use cusan_apps::{
    run_chaos_jacobi, run_chaos_jacobi_scheduled, run_chaos_tealeaf, run_chaos_tealeaf_scheduled,
    ChaosConfig, ChaosResult,
};
use cusan_bench::banner;
use explore::SchedulePlan;
use must_rt::WorldOutcome;
use std::sync::Arc;
use std::time::Instant;

/// Fault rates cycled across the seed sweep (per-site probabilities).
const RATES: [f64; 3] = [0.002, 0.01, 0.05];

/// Shadow budget applied on every 4th seed (pages of 4 KiB; small enough
/// that even the tiny chaos grids overflow it and drop annotations).
const BUDGET: usize = 2;

fn soak_config(seed: u64) -> ToolConfig {
    let mut c = Flavor::MustCusan.config();
    c.faults = FaultPlan::with_rate(seed, RATES[seed as usize % RATES.len()]);
    if seed % 4 == 3 {
        c.shadow_page_budget = Some(BUDGET);
    }
    c
}

struct Tally {
    runs: usize,
    faulted_ranks: usize,
    faults_fired: u64,
    dropped: u64,
    races: u64,
    schedules: u64,
    errs: Vec<String>,
}

/// Run one app under one seed twice (determinism) and replay every trace
/// (fidelity). Returns the first run for tallying.
fn soak_one(
    app: &str,
    seed: u64,
    run: impl Fn(ToolConfig) -> WorldOutcome<ChaosResult>,
    tally: &mut Tally,
) {
    let a = run(soak_config(seed));
    let b = run(soak_config(seed));
    tally.runs += 2;

    // Per-seed determinism: identical results, reports, and trace bytes.
    if a.results != b.results {
        tally.errs.push(format!(
            "{app} seed {seed}: results diverge across same-seed re-run:\n  {:?}\n  {:?}",
            a.results, b.results
        ));
    }
    for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
        if ra.races != rb.races {
            tally.errs.push(format!(
                "{app} seed {seed} rank {}: race reports diverge across re-run",
                ra.rank
            ));
        }
        if ra.trace != rb.trace {
            tally.errs.push(format!(
                "{app} seed {seed} rank {}: trace bytes diverge across re-run",
                ra.rank
            ));
        }
    }

    // Replay fidelity: the recorded stream reproduces the live run.
    for r in &a.ranks {
        let bytes = r.trace.as_deref().expect("soak runs are traced");
        let trace = match Trace::from_bytes(bytes) {
            Ok(t) => t,
            Err(e) => {
                tally.errs.push(format!(
                    "{app} seed {seed} rank {}: trace parse error: {e}",
                    r.rank
                ));
                continue;
            }
        };
        let out = replay(&trace);
        if out.reports != r.races {
            tally.errs.push(format!(
                "{app} seed {seed} rank {}: replay races {} != live {}",
                r.rank,
                out.reports.len(),
                r.races.len()
            ));
        }
        if out.stats != r.tsan {
            tally.errs.push(format!(
                "{app} seed {seed} rank {}: replay stats diverge\n  live:   {:?}\n  replay: {:?}",
                r.rank, r.tsan, out.stats
            ));
        }
        if out.counters != r.events {
            tally.errs.push(format!(
                "{app} seed {seed} rank {}: replay counters diverge\n  live:   {:?}\n  replay: {:?}",
                r.rank, r.events, out.counters
            ));
        }
    }

    // Failure attribution: a rank error is only acceptable if the plan
    // actually fired in this world — an error with zero `ApiFault`
    // events is a genuine bug wearing a chaos costume, and used to be
    // silently tallied as a "faulted rank" (green-washing the exit
    // code).
    let failed = a.results.iter().filter(|r| r.is_err()).count();
    let world_faults = a.ranks.iter().map(|r| r.events.api_faults).sum::<u64>();
    if failed > 0 && world_faults == 0 {
        tally.errs.push(format!(
            "{app} seed {seed}: {failed} rank(s) failed but no fault fired — \
             failure not attributable to the injected plan"
        ));
    }

    tally.faulted_ranks += failed;
    tally.faults_fired += world_faults;
    tally.dropped += a
        .ranks
        .iter()
        .map(|r| r.tsan.dropped_annotations)
        .sum::<u64>();
    tally.races += a.total_races();
}

/// Explored slice: enumerate `budget` schedules of one app under one
/// seed's fault plan and hold every explored execution to the same
/// contract as the default schedule — re-running its recorded choice
/// vectors reproduces the per-rank traces byte-for-byte, and replaying
/// each recorded trace reproduces the live reports and counters.
fn soak_explored(
    app: &str,
    seed: u64,
    lanes: usize,
    budget: usize,
    run: impl Fn(ToolConfig, Arc<SchedulePlan>) -> WorldOutcome<ChaosResult>,
    tally: &mut Tally,
) {
    let report = explore::explore(lanes, budget, |plan| {
        let out = run(soak_config(seed), Arc::clone(plan));
        (outcome_digest(&out), out)
    });
    tally.schedules += report.stats.schedules_run as u64;
    for ex in &report.runs {
        tally.runs += 2;
        let again = run(
            soak_config(seed),
            SchedulePlan::with_choices(ex.plan.clone()),
        );
        if ex.value.results != again.results {
            tally.errs.push(format!(
                "{app} seed {seed} plan {:?}: results diverge across same-schedule re-run",
                ex.plan
            ));
        }
        for (ra, rb) in ex.value.ranks.iter().zip(&again.ranks) {
            if ra.trace != rb.trace {
                tally.errs.push(format!(
                    "{app} seed {seed} plan {:?} rank {}: trace bytes diverge across re-run",
                    ex.plan, ra.rank
                ));
            }
        }
        for r in &ex.value.ranks {
            let bytes = r.trace.as_deref().expect("soak runs are traced");
            let trace = match Trace::from_bytes(bytes) {
                Ok(t) => t,
                Err(e) => {
                    tally.errs.push(format!(
                        "{app} seed {seed} plan {:?} rank {}: trace parse error: {e}",
                        ex.plan, r.rank
                    ));
                    continue;
                }
            };
            let out = replay(&trace);
            if out.reports != r.races || out.stats != r.tsan || out.counters != r.events {
                tally.errs.push(format!(
                    "{app} seed {seed} plan {:?} rank {}: explored replay diverges from live run",
                    ex.plan, r.rank
                ));
            }
        }
        tally.races += ex.value.total_races();
        tally.faults_fired += ex
            .value
            .ranks
            .iter()
            .map(|r| r.events.api_faults)
            .sum::<u64>();
    }
}

fn baseline(app: &str, run: impl Fn(ToolConfig) -> WorldOutcome<ChaosResult>) -> Vec<String> {
    let mut errs = Vec::new();
    let out = run(Flavor::MustCusan.config());
    if let Some(e) = out.results.iter().find_map(|r| r.clone().err()) {
        errs.push(format!("{app} baseline: rank failed without faults: {e}"));
    }
    if out.space.live_allocs != 0 {
        errs.push(format!(
            "{app} baseline: {} allocations leaked at teardown",
            out.space.live_allocs
        ));
    }
    if out.ranks.iter().any(|r| r.events.api_faults != 0) {
        errs.push(format!("{app} baseline: ApiFault events without a plan"));
    }
    errs
}

/// Final process exit code for a finished soak. Pure and total so the
/// no-green-washing contract is unit-testable: *any* recorded mismatch
/// fails the job, as does a sweep that never fired a single fault
/// (dead rates or broken plan plumbing would otherwise pass vacuously).
fn verdict(errs: &[String], faults_fired: u64) -> i32 {
    if !errs.is_empty() || faults_fired == 0 {
        1
    } else {
        0
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CHAOS_SEEDS").ok())
        .map(|s| s.parse().expect("seed count must be a number"))
        .unwrap_or(32);
    let explore_budget: usize = std::env::args()
        .nth(2)
        .or_else(|| std::env::var("CHAOS_EXPLORE_BUDGET").ok())
        .map(|s| s.parse().expect("explore budget must be a number"))
        .unwrap_or(3);
    banner(
        "chaos soak",
        "sweeps seeded fault plans over the symmetric Jacobi/TeaLeaf chaos\n\
         bodies; asserts no panics, per-seed determinism, and record/replay\n\
         fidelity under injected CUDA/MPI failures and shadow pressure",
    );

    let cfg = ChaosConfig::default();
    let start = Instant::now();
    let mut tally = Tally {
        runs: 0,
        faulted_ranks: 0,
        faults_fired: 0,
        dropped: 0,
        races: 0,
        schedules: 0,
        errs: Vec::new(),
    };

    tally
        .errs
        .extend(baseline("jacobi", |t| run_chaos_jacobi(&cfg, t)));
    tally
        .errs
        .extend(baseline("tealeaf", |t| run_chaos_tealeaf(&cfg, t)));

    for seed in 0..seeds {
        soak_one("jacobi", seed, |t| run_chaos_jacobi(&cfg, t), &mut tally);
        soak_one("tealeaf", seed, |t| run_chaos_tealeaf(&cfg, t), &mut tally);
        if explore_budget > 1 {
            // Every 4th seed also sweeps alternative schedules: the
            // fault plan composes with the controller, and every
            // explored execution must keep the determinism and replay
            // contracts.
            if seed % 4 == 0 {
                soak_explored(
                    "jacobi",
                    seed,
                    cfg.ranks + 1,
                    explore_budget,
                    |t, p| run_chaos_jacobi_scheduled(&cfg, t, Some(p)),
                    &mut tally,
                );
                soak_explored(
                    "tealeaf",
                    seed,
                    cfg.ranks + 1,
                    explore_budget,
                    |t, p| run_chaos_tealeaf_scheduled(&cfg, t, Some(p)),
                    &mut tally,
                );
            }
        }
    }

    println!(
        "{} runs over {seeds} seeds in {:.2?}: {} faults fired across {} rank failures,\n\
         {} annotations dropped under budget, {} races, {} explored schedules, {} mismatches",
        tally.runs,
        start.elapsed(),
        tally.faults_fired,
        tally.faulted_ranks,
        tally.dropped,
        tally.races,
        tally.schedules,
        tally.errs.len()
    );
    let code = verdict(&tally.errs, tally.faults_fired);
    if code == 0 {
        println!("OK: deterministic degradation and faithful replay on every seed");
    } else {
        if tally.faults_fired == 0 {
            eprintln!("MISMATCH: sweep fired no faults at all — rates or plan plumbing broken");
        }
        for e in &tally.errs {
            eprintln!("MISMATCH: {e}");
        }
    }
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::verdict;

    #[test]
    fn any_seed_failure_fails_the_process() {
        assert_eq!(verdict(&[], 10), 0);
        assert_eq!(verdict(&["jacobi seed 3: diverged".to_string()], 10), 1);
        // A vacuous sweep (no faults fired) must not pass either.
        assert_eq!(verdict(&[], 0), 1);
        assert_eq!(verdict(&["boom".to_string()], 0), 1);
    }
}
