//! Sync vs async checker backend sweep with a JSON trajectory record.
//!
//! Runs Jacobi, 2-D Jacobi, and TeaLeaf under the full MUST & CuSan stack
//! with checking inline (sync) and on the shared work-stealing checker
//! pool (async), prints a table, and writes `BENCH_async_check.json` to
//! the current directory (override with `CUSAN_BENCH_ASYNC_JSON`) so
//! future PRs have a perf baseline to diff against. The JSON records the
//! hardware thread count, the effective pool worker count per case
//! (after any `CUSAN_CHECK_THREADS` override), and the adaptive
//! batch-size profile (min/max/avg plus the power-of-two histogram), so a
//! regression in batch shaping is visible even when wall-clock noise
//! hides it.
//!
//! The async backend overlaps detection with application progress, so a
//! win requires spare hardware parallelism: with `available_parallelism`
//! ≥ 2 the async mode should at least break even (asserted leniently at
//! ≥ 0.5× to keep CI robust); on a single hardware thread the sweep only
//! *records* the cost of the indirection — ring traffic plus context
//! switches with nothing to overlap onto — and asserts nothing. The
//! observability counters (stalls, max queue depth) are reported either
//! way: a stall-heavy profile means the detector thread cannot keep up
//! and the ring capacity or batch size needs tuning, independent of
//! wall-clock.

use cusan::async_check::BATCH_HIST_BUCKETS;
use cusan::{effective_workers, AsyncCheckStats, Flavor, ToolConfig};
use cusan_apps::{run_jacobi, run_jacobi2d, run_tealeaf};
use cusan_bench::{
    banner, bench_runs, jacobi2d_config, jacobi_config, measure, rel, tealeaf_config,
};
use must_rt::WorldOutcome;
use std::fmt::Write as _;
use std::time::Duration;

fn mode_config(async_check: bool) -> ToolConfig {
    let mut c = Flavor::MustCusan.config();
    c.async_check = async_check;
    c
}

/// Effective pool worker count for a case: the hardware formula after
/// the frozen `CUSAN_CHECK_THREADS` override, exactly as the contexts
/// apply it.
fn check_threads(ranks: usize) -> usize {
    effective_workers(ranks, cusan::ctx::check_threads_env())
}

/// Sum the per-rank async counters. Extremes fold as extremes (queue
/// depth and max batch take the max over ranks, min batch the min over
/// ranks that applied anything), the histogram element-wise, and the mean
/// batch size is re-derived batch-weighted from the per-rank means.
fn fold_stats<T>(out: &WorldOutcome<T>) -> AsyncCheckStats {
    let mut acc = AsyncCheckStats::default();
    let mut messages = 0u64;
    for r in &out.ranks {
        if let Some(s) = r.async_check {
            acc.events_enqueued += s.events_enqueued;
            acc.batches_applied += s.batches_applied;
            acc.max_queue_depth = acc.max_queue_depth.max(s.max_queue_depth);
            acc.stalls += s.stalls;
            if s.batches_applied > 0 {
                acc.min_batch = if acc.min_batch == 0 {
                    s.min_batch
                } else {
                    acc.min_batch.min(s.min_batch)
                };
            }
            acc.max_batch = acc.max_batch.max(s.max_batch);
            messages += s.avg_batch * s.batches_applied;
            acc.batches_stolen += s.batches_stolen;
            for (a, b) in acc.batch_hist.iter_mut().zip(&s.batch_hist) {
                *a += b;
            }
        }
    }
    acc.avg_batch = messages.checked_div(acc.batches_applied).unwrap_or(0);
    acc
}

struct Case {
    name: &'static str,
    ranks: usize,
    sync: Duration,
    asyn: Duration,
    stats: AsyncCheckStats,
}

impl Case {
    /// Sync time over async time: > 1 means the async backend is faster.
    fn speedup(&self) -> f64 {
        rel(self.sync, self.asyn)
    }
}

fn sweep(
    name: &'static str,
    ranks: usize,
    runs: usize,
    run: impl Fn(bool) -> (Duration, AsyncCheckStats),
) -> Case {
    let sync = measure(runs, || run(false).0);
    let mut stats = AsyncCheckStats::default();
    let asyn = measure(runs, || {
        let (d, s) = run(true);
        stats = s;
        d
    });
    Case {
        name,
        ranks,
        sync,
        asyn,
        stats,
    }
}

fn main() {
    let runs = bench_runs();
    let jc = jacobi_config();
    let j2 = jacobi2d_config();
    let tc = tealeaf_config();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "Async checker — sync vs shared checker pool [MUST & CuSan]",
        &format!(
            "Jacobi {}x{} x{} | Jacobi2D {}x{} x{} ({}x{} ranks) | TeaLeaf {}x{} x{} | \
             mean of {runs} runs (+1 warmup) | {parallelism} hw threads",
            jc.nx, jc.ny, jc.iters, j2.nx, j2.ny, j2.iters, j2.px, j2.py, tc.nx, tc.ny, tc.steps
        ),
    );

    let cases = [
        sweep("jacobi", jc.ranks, runs, |a| {
            let r = run_jacobi(&jc, mode_config(a));
            (r.elapsed, fold_stats(&r.outcome))
        }),
        sweep("jacobi2d", j2.px * j2.py, runs, |a| {
            let r = run_jacobi2d(&j2, mode_config(a));
            (r.elapsed, fold_stats(&r.outcome))
        }),
        sweep("tealeaf", tc.ranks, runs, |a| {
            let r = run_tealeaf(&tc, mode_config(a));
            (r.elapsed, fold_stats(&r.outcome))
        }),
    ];

    println!(
        "{:<10} {:>4} {:>10} {:>10} {:>8} {:>12} {:>9} {:>8} {:>7} {:>13} {:>7}",
        "App",
        "Thr",
        "Sync",
        "Async",
        "Speedup",
        "Events",
        "Batches",
        "MaxDepth",
        "Stalls",
        "Batch mn/av/mx",
        "Stolen"
    );
    println!("{:-<110}", "");
    for c in &cases {
        println!(
            "{:<10} {:>4} {:>10.2?} {:>10.2?} {:>7.2}x {:>12} {:>9} {:>8} {:>7} {:>4}/{:>3}/{:>3} {:>7}",
            c.name,
            check_threads(c.ranks),
            c.sync,
            c.asyn,
            c.speedup(),
            c.stats.events_enqueued,
            c.stats.batches_applied,
            c.stats.max_queue_depth,
            c.stats.stalls,
            c.stats.min_batch,
            c.stats.avg_batch,
            c.stats.max_batch,
            c.stats.batches_stolen
        );
    }

    // Hand-rolled JSON: the workspace is offline, so no serde.
    let mut json = format!(
        "{{\n  \"benchmark\": \"async_check\",\n  \"hw_threads\": {parallelism},\n  \"runs\": {runs},\n  \"batch_hist_buckets\": {BATCH_HIST_BUCKETS},\n  \"cases\": [\n"
    );
    for (i, c) in cases.iter().enumerate() {
        let hist: Vec<String> = c.stats.batch_hist.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ranks\": {}, \"check_threads\": {}, \"sync_ns\": {}, \"async_ns\": {}, \"speedup\": {:.3}, \
             \"events_enqueued\": {}, \"batches_applied\": {}, \"max_queue_depth\": {}, \"stalls\": {}, \
             \"min_batch\": {}, \"max_batch\": {}, \"avg_batch\": {}, \"batches_stolen\": {}, \"batch_hist\": [{}]}}{}",
            c.name,
            c.ranks,
            check_threads(c.ranks),
            c.sync.as_nanos(),
            c.asyn.as_nanos(),
            c.speedup(),
            c.stats.events_enqueued,
            c.stats.batches_applied,
            c.stats.max_queue_depth,
            c.stats.stalls,
            c.stats.min_batch,
            c.stats.max_batch,
            c.stats.avg_batch,
            c.stats.batches_stolen,
            hist.join(", "),
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let path =
        std::env::var("CUSAN_BENCH_ASYNC_JSON").unwrap_or_else(|_| "BENCH_async_check.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    for c in &cases {
        assert!(
            c.stats.events_enqueued > 0,
            "{}: async runs must go through the ring",
            c.name
        );
    }
    if parallelism >= 2 {
        for c in &cases {
            let ok = c.speedup() >= 0.5;
            println!(
                "target ({} hw threads): {} async >= 0.5x sync -> {}",
                parallelism,
                c.name,
                if ok { "met" } else { "MISSED" }
            );
            assert!(
                ok,
                "{}: async backend {:.2}x of sync with spare parallelism available",
                c.name,
                c.speedup()
            );
        }
    } else {
        println!("single hw thread: nothing to overlap onto; recording costs, no speedup target");
    }
}
