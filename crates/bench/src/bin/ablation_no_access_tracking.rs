//! §V-B ablation — "completely removing memory annotations but keeping
//! the rest of our instrumentation brings the overhead down to almost
//! vanilla."
//!
//! Runs Jacobi under: Vanilla, CuSan with range tracking disabled
//! (fibers, arcs, and sync annotations still active), and full CuSan.

use cusan::Flavor;
use cusan_apps::run_jacobi;
use cusan_bench::{banner, bench_runs, jacobi_config, measure, rel};

fn main() {
    let runs = bench_runs();
    let cfg = jacobi_config();
    banner(
        "§V-B ablation — CuSan without memory-access tracking",
        &format!(
            "Jacobi {}x{} x{} iters, {} ranks, mean of {runs} runs",
            cfg.nx, cfg.ny, cfg.iters, cfg.ranks
        ),
    );

    let vanilla = measure(runs, || run_jacobi(&cfg, Flavor::Vanilla).elapsed);

    let mut no_ranges = Flavor::Cusan.config();
    no_ranges.track_access_ranges = false;
    let no_tracking = measure(runs, || run_jacobi(&cfg, no_ranges).elapsed);

    let full = measure(runs, || run_jacobi(&cfg, Flavor::Cusan).elapsed);

    println!(
        "{:<34} {:>12} {:>10}",
        "Configuration", "Runtime [s]", "Rel."
    );
    println!(
        "{:<34} {:>12.3} {:>9.2}x",
        "Vanilla",
        vanilla.as_secs_f64(),
        1.0
    );
    println!(
        "{:<34} {:>12.3} {:>9.2}x",
        "CuSan, no memory annotations",
        no_tracking.as_secs_f64(),
        rel(no_tracking, vanilla)
    );
    println!(
        "{:<34} {:>12.3} {:>9.2}x",
        "CuSan, full",
        full.as_secs_f64(),
        rel(full, vanilla)
    );
    println!("\npaper claim: the no-annotation configuration is 'almost vanilla';");
    println!("the gap between the last two rows is the cost of range tracking (Fig. 12's driver).");
}
