//! §VI-D ablation — bounded access tracking.
//!
//! The paper's future work proposes "identifying and focusing on the
//! boundary regions of data exchanged via MPI, rather than tracking
//! entire device pointer allocations". This repository implements a sound
//! version driven by the compiler pass's *tid-boundedness* analysis; this
//! binary measures its effect on a boundary-pack workload: small
//! (grid = one row) pack kernels writing into a large field allocation,
//! the shape of a 2-D halo exchange.

use cuda_sim::StreamId;
use cusan::{CusanCuda, Flavor, ToolConfig, ToolCtx};
use cusan_apps::AppKernels;
use cusan_bench::{banner, bench_runs, env_u64, measure};
use kernel_ir::{LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, DeviceId};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

fn run_once(cfg: ToolConfig, field_elems: u64, row: u64, iters: u64) -> (std::time::Duration, u64) {
    let k = AppKernels::shared();
    let tools = Rc::new(ToolCtx::new(0, cfg));
    let mut cuda = CusanCuda::new(
        DeviceId(0),
        Arc::new(AddressSpace::new()),
        Arc::clone(&k.registry),
        Rc::clone(&tools),
    );
    let field = cuda.malloc::<f64>(field_elems).unwrap();
    let start = Instant::now();
    for i in 0..iters {
        // Boundary pack: fill one row's worth of elements at the head of
        // the big allocation (grid == row << allocation).
        cuda.launch(
            k.fill,
            LaunchGrid::cover(row, 128),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(field),
                LaunchArg::F64(i as f64),
                LaunchArg::I64(row as i64),
            ],
        )
        .unwrap();
        cuda.device_synchronize().unwrap();
    }
    let elapsed = start.elapsed();
    let stats = tools.tsan_stats();
    (elapsed, stats.read_bytes + stats.write_bytes)
}

fn main() {
    let runs = bench_runs();
    let field = env_u64("CUSAN_BENCH_FIELD_ELEMS", 1 << 21); // 16 MiB field
    let row = env_u64("CUSAN_BENCH_ROW_ELEMS", 1 << 10);
    let iters = env_u64("CUSAN_BENCH_PACK_ITERS", 200);
    banner(
        "§VI-D ablation — bounded access tracking on a boundary-pack workload",
        &format!(
            "{iters} pack kernels of {row} elements into a {} MiB field, mean of {runs} runs",
            (field * 8) >> 20
        ),
    );

    let mut tracked = [0u64; 3];
    let configs: [(&str, ToolConfig); 3] = [
        ("Vanilla", Flavor::Vanilla.config()),
        ("CuSan, whole-allocation tracking", Flavor::Cusan.config()),
        ("CuSan, bounded tracking", {
            let mut c = Flavor::Cusan.config();
            c.bounded_tracking = true;
            c
        }),
    ];

    let mut times = Vec::new();
    for (i, (_, cfg)) in configs.iter().enumerate() {
        let t = measure(runs, || {
            let (t, bytes) = run_once(*cfg, field, row, iters);
            tracked[i] = bytes;
            t
        });
        times.push(t);
    }

    println!(
        "{:<36} {:>12} {:>8} {:>16}",
        "Configuration", "Runtime [s]", "Rel.", "Tracked bytes"
    );
    for (i, (name, _)) in configs.iter().enumerate() {
        println!(
            "{:<36} {:>12.4} {:>7.2}x {:>16}",
            name,
            times[i].as_secs_f64(),
            times[i].as_secs_f64() / times[0].as_secs_f64(),
            tracked[i]
        );
    }
    println!(
        "\nbounded tracking cuts tracked bytes by {:.0}x on this workload ({} -> {}),",
        tracked[1] as f64 / tracked[2].max(1) as f64,
        tracked[1],
        tracked[2]
    );
    println!("eliminating the whole-allocation overhead the paper identifies as future work.");
}
