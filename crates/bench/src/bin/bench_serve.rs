//! Serve-path throughput: many sessions over one checker pool vs solo
//! sequential replay, with a JSON trajectory record.
//!
//! Streams `CUSAN_BENCH_SERVE_SESSIONS` copies of the trace corpus (the
//! golden TeaLeaf fixture plus freshly recorded chaos-twin traces of
//! both mini-apps) through an in-process [`cusan_serve::ServeEngine`] —
//! no socket, so the number is pure ingest + check throughput — and
//! compares against replaying the same session list sequentially with
//! the solo synchronous path. Every served summary is asserted equal to
//! its solo counterpart (the determinism contract is part of the bench,
//! not just the tests), and a second capped pass demonstrates the global
//! shadow budget evicting idle sessions.
//!
//! Writes `BENCH_serve.json` to the current directory (override with
//! `CUSAN_BENCH_SERVE_JSON`) — uploaded by the `serve-smoke` CI job so
//! future PRs have a serve-throughput baseline to diff against.

use cusan::{transcode, Trace, TraceFormat};
use cusan_bench::{banner, bench_runs, env_u64, measure, rel};
use cusan_serve::{solo_summary, EngineConfig, ServeEngine, SessionIngest};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GOLDEN_FIXTURE: &str = include_str!("../../../../tests/data/tealeaf_small.trace");

/// The encoding this bench run measures (the `CUSAN_TRACE_FORMAT` knob,
/// text by default) — chaos-twin recordings already honor it, and the
/// text golden fixture is transcoded to match so the whole corpus is
/// uniform.
fn active_format() -> TraceFormat {
    cusan::ctx::trace_format_env().unwrap_or(TraceFormat::Text)
}

fn corpus() -> Vec<Vec<u8>> {
    let fixture = match active_format() {
        TraceFormat::Text => GOLDEN_FIXTURE.as_bytes().to_vec(),
        TraceFormat::Binary => transcode(GOLDEN_FIXTURE.as_bytes(), TraceFormat::Binary)
            .expect("golden fixture transcodes"),
    };
    let mut traces = vec![fixture];
    let cfg = cusan_apps::ChaosConfig::default();
    for out in [
        cusan_apps::run_chaos_jacobi(&cfg, cusan::Flavor::MustCusan),
        cusan_apps::run_chaos_tealeaf(&cfg, cusan::Flavor::MustCusan),
    ] {
        for rank in out.ranks {
            traces.push(rank.trace.expect("chaos runs are always traced"));
        }
    }
    traces
}

/// One concurrent pass: returns wall time and the engine (for stats).
fn serve_pass(
    corpus: &[Vec<u8>],
    sessions: usize,
    config: EngineConfig,
) -> (Duration, Arc<ServeEngine>) {
    let engine = ServeEngine::new(config);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..sessions {
            let engine = Arc::clone(&engine);
            let trace = &corpus[i % corpus.len()];
            scope.spawn(move || {
                let mut ingest = SessionIngest::new(engine);
                for c in trace.chunks(4096) {
                    ingest.feed(c).expect("feed");
                }
                ingest.finish().expect("finish")
            });
        }
    });
    (started.elapsed(), engine)
}

fn main() {
    let runs = bench_runs();
    let sessions = env_u64("CUSAN_BENCH_SERVE_SESSIONS", 64) as usize;
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let corpus = corpus();
    let solo: Vec<_> = corpus
        .iter()
        .map(|t| solo_summary(t).expect("corpus traces parse"))
        .collect();
    banner(
        "cusan-serve — multi-session checking throughput",
        &format!(
            "{sessions} sessions over {} distinct traces | mean of {runs} runs (+1 warmup) | \
             {parallelism} hw threads",
            corpus.len()
        ),
    );

    // Baseline: the same session list checked one after another, solo.
    let solo_time = measure(runs, || {
        let started = Instant::now();
        for i in 0..sessions {
            let s = solo_summary(&corpus[i % corpus.len()]).expect("replay");
            assert_eq!(s, solo[i % corpus.len()]);
        }
        started.elapsed()
    });

    // Concurrent: all sessions at once over one pool. Summaries are
    // re-verified once outside the timed region.
    let served_time = measure(runs, || {
        serve_pass(&corpus, sessions, EngineConfig::default()).0
    });
    {
        let engine = ServeEngine::new(EngineConfig::default());
        for (i, sum) in (0..sessions)
            .map(|i| {
                let mut ingest = SessionIngest::new(Arc::clone(&engine));
                ingest.feed(&corpus[i % corpus.len()]).unwrap();
                (i, ingest.finish().unwrap())
            })
            .collect::<Vec<_>>()
        {
            assert_eq!(sum, solo[i % corpus.len()], "session {i} diverged");
        }
    }

    // Budget pass: cap retention at a quarter of the unlimited residency.
    let (_, unlimited) = serve_pass(&corpus, sessions, EngineConfig::default());
    let full_pages = unlimited.stats().resident_pages;
    let budget = (full_pages / 4).max(1) as usize;
    let (_, capped) = serve_pass(
        &corpus,
        sessions,
        EngineConfig {
            check_threads: None,
            global_page_budget: Some(budget),
            ..EngineConfig::default()
        },
    );
    let st = capped.stats();
    assert!(
        st.sessions_evicted > 0,
        "budget {budget} of {full_pages} pages must evict"
    );
    assert!(st.resident_pages <= budget as u64);

    // Spill pass: every session detaches mid-trace, gets spilled to disk
    // under a zero live budget, then resumes, restores, and finishes —
    // the crash-safe path's cost, with its summaries still asserted
    // equal to solo replay.
    let spill_dir = std::env::temp_dir().join(format!("cusan-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let spill_engine = ServeEngine::new(EngineConfig {
        spill_dir: Some(spill_dir.clone()),
        live_page_budget: Some(0),
        ..EngineConfig::default()
    });
    let spill_started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..sessions {
            let engine = Arc::clone(&spill_engine);
            let trace = &corpus[i % corpus.len()];
            let expected = &solo[i % corpus.len()];
            scope.spawn(move || {
                let id = i as u64;
                let bytes: &[u8] = trace;
                let half = bytes.len() / 2;
                engine.open_new(id).expect("open");
                engine.feed(id, 0, &bytes[..half]).expect("feed head");
                engine.detach(id); // zero live budget: spills idle sessions
                engine.resume(id).expect("resume");
                engine
                    .feed(id, half as u64, &bytes[half..])
                    .expect("feed tail");
                let served = engine.close(id).expect("close");
                assert_eq!(&served, expected, "session {i} diverged across spill");
            });
        }
    });
    let spill_time = spill_started.elapsed();
    let sp = spill_engine.stats();
    let _ = std::fs::remove_dir_all(&spill_dir);
    assert!(
        sp.sessions_restored > 0,
        "spill pass restored nothing (spilled {})",
        sp.sessions_spilled
    );

    // Per-format footprint of the corpus: trace bytes per event, for the
    // BENCH_trace.json cross-check (events counted by parsing — cheap
    // next to the replay passes above).
    let format = active_format();
    let corpus_bytes: usize = corpus.iter().map(Vec::len).sum();
    let corpus_events: usize = corpus
        .iter()
        .map(|t| {
            Trace::from_bytes(t)
                .expect("corpus traces parse")
                .events
                .len()
        })
        .sum();
    let bytes_per_event = corpus_bytes as f64 / corpus_events.max(1) as f64;

    let speedup = rel(solo_time, served_time);
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "Pass", "Wall", "Sessions/s", "Speedup"
    );
    println!("{:-<64}", "");
    println!(
        "{:<28} {:>12.2?} {:>12.0} {:>8}",
        "solo sequential",
        solo_time,
        sessions as f64 / solo_time.as_secs_f64().max(1e-9),
        ""
    );
    println!(
        "{:<28} {:>12.2?} {:>12.0} {:>7.2}x",
        "served concurrent",
        served_time,
        sessions as f64 / served_time.as_secs_f64().max(1e-9),
        speedup
    );
    println!(
        "budget pass: {budget} of {full_pages} pages -> evicted {} sessions / {} pages, \
         resident {} (peak {})",
        st.sessions_evicted, st.shadow_pages_evicted, st.resident_pages, st.peak_resident_pages
    );
    println!(
        "labels: {} unique / {} shared across sessions",
        st.labels_unique, st.labels_shared
    );
    println!(
        "corpus: {} format, {corpus_bytes} bytes / {corpus_events} events = {bytes_per_event:.1} B/event",
        format.name()
    );
    println!(
        "spill pass: {:?} for {sessions} mid-trace spill/restore round trips \
         (resumed {}, spilled {}, restored {}, dup bytes dropped {})",
        spill_time,
        sp.sessions_resumed,
        sp.sessions_spilled,
        sp.sessions_restored,
        sp.duplicate_bytes_dropped
    );

    // Hand-rolled JSON: the workspace is offline, so no serde.
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"sessions\": {sessions},\n  \
         \"distinct_traces\": {},\n  \"format\": \"{}\",\n  \"trace_bytes\": {corpus_bytes},\n  \
         \"trace_events\": {corpus_events},\n  \"bytes_per_event\": {bytes_per_event:.2},\n  \
         \"hw_threads\": {parallelism},\n  \"runs\": {runs},\n  \
         \"solo_ns\": {},\n  \"served_ns\": {},\n  \"speedup\": {speedup:.3},\n  \
         \"sessions_per_sec\": {:.1},\n  \"budget_pages\": {budget},\n  \
         \"unlimited_pages\": {full_pages},\n  \"sessions_evicted\": {},\n  \
         \"shadow_pages_evicted\": {},\n  \"peak_resident_pages\": {},\n  \
         \"labels_unique\": {},\n  \"labels_shared\": {},\n  \"spill_pass_ns\": {},\n  \
         \"sessions_resumed\": {},\n  \"sessions_spilled\": {},\n  \
         \"sessions_restored\": {},\n  \"duplicate_bytes_dropped\": {}\n}}\n",
        corpus.len(),
        format.name(),
        solo_time.as_nanos(),
        served_time.as_nanos(),
        sessions as f64 / served_time.as_secs_f64().max(1e-9),
        st.sessions_evicted,
        st.shadow_pages_evicted,
        st.peak_resident_pages,
        st.labels_unique,
        st.labels_shared,
        spill_time.as_nanos(),
        sp.sessions_resumed,
        sp.sessions_spilled,
        sp.sessions_restored,
        sp.duplicate_bytes_dropped,
    );
    let path =
        std::env::var("CUSAN_BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    // The concurrent path must not collapse: like the async-check bench,
    // assert a lenient floor only when there is parallelism to exploit.
    if parallelism >= 2 {
        assert!(
            speedup >= 0.5,
            "served concurrent {speedup:.2}x of solo with spare parallelism available"
        );
    } else {
        println!("single hw thread: recording costs only, no speedup target");
    }
}
