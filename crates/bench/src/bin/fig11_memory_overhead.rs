//! Fig. 11 — relative memory overhead of the tool flavors.
//!
//! The paper measures the resident set size (RSS) of one MPI process at
//! `MPI_Finalize`: Jacobi — TSan 1.2×, MUST 1.17×, CuSan 1.71×,
//! MUST & CuSan 1.77×; TeaLeaf — 1.0×, 1.03×, 1.25×, 1.29× (vanilla RSS
//! 311 MB / 283 MB).
//!
//! The simulation has no OS process per rank, so RSS is modeled as
//! `baseline + app_bytes/rank + tool_bytes/rank`, where the baseline
//! stands for everything a real process maps besides the domain (binary,
//! MPI library, CUDA driver, …; the paper's vanilla RSS is dominated by
//! it). Both the modeled ratio and the raw tool bytes are reported;
//! the shape CuSan > MUST ≥ TSan ≥ 1 and Jacobi > TeaLeaf is the
//! reproduction target.

use cusan::Flavor;
use cusan_apps::{run_jacobi, run_tealeaf};
use cusan_bench::{banner, env_u64, fmt_bytes, jacobi_config, tealeaf_config, INSTRUMENTED};

fn main() {
    let jc = jacobi_config();
    let tc = tealeaf_config();
    let baseline = env_u64("CUSAN_BENCH_RSS_BASELINE_MB", 64) * (1 << 20);
    banner(
        "Fig. 11 — relative memory overhead [M_flavor / M_vanilla] per rank",
        &format!(
            "modeled RSS = {} baseline + app/rank + tool/rank (set CUSAN_BENCH_RSS_BASELINE_MB)",
            fmt_bytes(baseline)
        ),
    );

    println!(
        "{:<14} {:>10} {:>14} {:>10} {:>14}",
        "Flavor", "Jacobi", "(tool mem)", "TeaLeaf", "(tool mem)"
    );
    let mut vanilla_app = [0u64; 2];
    for (i, flavor) in [Flavor::Vanilla]
        .iter()
        .chain(INSTRUMENTED.iter())
        .enumerate()
    {
        let j = run_jacobi(&jc, *flavor);
        let t = run_tealeaf(&tc, *flavor);
        let ranks = jc.ranks as u64;
        let japp = j.outcome.space.peak_bytes / ranks;
        let tapp = t.outcome.space.peak_bytes / ranks;
        let jtool = j.outcome.total_tool_memory() / ranks;
        let ttool = t.outcome.total_tool_memory() / ranks;
        if i == 0 {
            vanilla_app = [japp, tapp];
        }
        // Vanilla's modeled RSS uses its own app bytes; flavors use theirs
        // (identical domains, so app bytes match vanilla's).
        let jr = (baseline + japp + jtool) as f64 / (baseline + vanilla_app[0]) as f64;
        let tr = (baseline + tapp + ttool) as f64 / (baseline + vanilla_app[1]) as f64;
        println!(
            "{:<14} {:>9.2}x {:>14} {:>9.2}x {:>14}",
            flavor.to_string(),
            jr,
            fmt_bytes(jtool),
            tr,
            fmt_bytes(ttool)
        );
    }
    println!("\npaper (V100):  Jacobi  TSan 1.20x  MUST 1.17x  CuSan 1.71x  MUST&CuSan 1.77x");
    println!("               TeaLeaf TSan 1.00x  MUST 1.03x  CuSan 1.25x  MUST&CuSan 1.29x");
}
