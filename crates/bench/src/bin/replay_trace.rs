//! Record / replay driver for the event-pipeline trace formats.
//!
//! A recorded trace replays the exact event stream a rank emitted through
//! a fresh detector, offline — no device, no MPI, no application. Because
//! the checker sink is the single apply path for both the live run and
//! the replay, the replay must reproduce the live race reports, detector
//! counters, and Table-I event counters bit-for-bit; `check` verifies
//! exactly that — for the recorded bytes *and* their transcoded twin in
//! the other format — and exits non-zero on any divergence.
//!
//! Usage:
//!
//! ```text
//! replay_trace record <dir>      record Jacobi + TeaLeaf (MUST & CuSan)
//!                                and write one .trace file per rank
//!                                (CUSAN_TRACE_FORMAT picks the encoding)
//! replay_trace replay <file>...  replay traces (either format, sniffed),
//!                                print reports + stats
//! replay_trace transcode <in> <out>  rewrite a trace into the other
//!                                format (text ⇄ binary), record-for-record
//! replay_trace check             record, replay, compare live vs replay
//!                                vs transcoded twin (the CI gate)
//! ```

use cusan::{replay, transcode, Flavor, Trace, TraceFormat};
use cusan_apps::{run_jacobi_traced, run_tealeaf_traced, JacobiConfig, TeaLeafConfig};
use cusan_bench::banner;
use must_rt::RankOutcome;
use std::time::{Duration, Instant};

fn small_jacobi() -> JacobiConfig {
    JacobiConfig {
        nx: 64,
        ny: 32,
        ranks: 2,
        iters: 4,
        ..JacobiConfig::default()
    }
}

fn small_tealeaf() -> TeaLeafConfig {
    TeaLeafConfig {
        nx: 16,
        ny: 16,
        ranks: 2,
        steps: 1,
        ..TeaLeafConfig::default()
    }
}

/// Record both mini-apps; returns (app name, live rank outcomes, live wall
/// time) per app.
fn record_apps() -> Vec<(&'static str, Vec<RankOutcome>, Duration)> {
    let j = run_jacobi_traced(&small_jacobi(), Flavor::MustCusan);
    let t = run_tealeaf_traced(&small_tealeaf(), Flavor::MustCusan);
    vec![
        ("jacobi", j.outcome.ranks, j.elapsed),
        ("tealeaf", t.outcome.ranks, t.elapsed),
    ]
}

/// Compare one rank's live outcome against its trace replay — as
/// recorded, and again through the transcoded twin in the other format.
/// Returns the list of mismatch descriptions (empty = faithful replay).
fn verify_rank(app: &str, rank: &RankOutcome) -> Vec<String> {
    let mut errs = Vec::new();
    let bytes = rank.trace.as_deref().expect("traced run carries a trace");
    let trace = match Trace::from_bytes(bytes) {
        Ok(t) => t,
        Err(e) => return vec![format!("{app} rank {}: trace parse error: {e}", rank.rank)],
    };
    let outcome = replay(&trace);
    if outcome.reports != rank.races {
        errs.push(format!(
            "{app} rank {}: race reports diverge (live {} vs replay {})",
            rank.rank,
            rank.races.len(),
            outcome.reports.len()
        ));
    }
    if outcome.stats != rank.tsan {
        errs.push(format!(
            "{app} rank {}: detector stats diverge\n  live:   {:?}\n  replay: {:?}",
            rank.rank, rank.tsan, outcome.stats
        ));
    }
    if outcome.counters != rank.events {
        errs.push(format!(
            "{app} rank {}: event counters diverge\n  live:   {:?}\n  replay: {:?}",
            rank.rank, rank.events, outcome.counters
        ));
    }
    // The CounterBump mirror of the device's Table-I CUDA rows.
    let cuda = [
        ("cuda.streams", rank.cuda.streams),
        ("cuda.memset_calls", rank.cuda.memset_calls),
        ("cuda.memcpy_calls", rank.cuda.memcpy_calls),
        ("cuda.sync_calls", rank.cuda.sync_calls),
        ("cuda.kernel_calls", rank.cuda.kernel_calls),
    ];
    for (name, live) in cuda {
        let replayed = outcome.counters.named(name);
        if replayed != live {
            errs.push(format!(
                "{app} rank {}: {name} diverges (device {live} vs replay {replayed})",
                rank.rank
            ));
        }
    }
    // Binary/text twin: transcode into the other format, replay that, and
    // demand the identical summary plus a byte-identical round trip.
    let recorded = sniff(bytes);
    let twin_format = match recorded {
        TraceFormat::Text => TraceFormat::Binary,
        TraceFormat::Binary => TraceFormat::Text,
    };
    match transcode(bytes, twin_format) {
        Err(e) => errs.push(format!(
            "{app} rank {}: transcode to {} failed: {e}",
            rank.rank,
            twin_format.name()
        )),
        Ok(twin) => {
            match Trace::from_bytes(&twin) {
                Err(e) => errs.push(format!(
                    "{app} rank {}: {} twin parse error: {e}",
                    rank.rank,
                    twin_format.name()
                )),
                Ok(twin_trace) => {
                    let twin_out = replay(&twin_trace);
                    if twin_out.reports != outcome.reports
                        || twin_out.stats != outcome.stats
                        || twin_out.counters != outcome.counters
                    {
                        errs.push(format!(
                            "{app} rank {}: {} twin replay diverges from the recording",
                            rank.rank,
                            twin_format.name()
                        ));
                    }
                }
            }
            match transcode(&twin[..], recorded) {
                Err(e) => errs.push(format!(
                    "{app} rank {}: transcode back to {} failed: {e}",
                    rank.rank,
                    recorded.name()
                )),
                Ok(back) => {
                    if back != bytes {
                        errs.push(format!(
                            "{app} rank {}: {} → {} → {} round trip is not byte-identical",
                            rank.rank,
                            recorded.name(),
                            twin_format.name(),
                            recorded.name()
                        ));
                    }
                }
            }
        }
    }
    errs
}

/// Which format a recorded byte buffer holds (both start with a magic).
fn sniff(bytes: &[u8]) -> TraceFormat {
    if bytes.starts_with(cusan::binio::BIN_FAMILY) {
        TraceFormat::Binary
    } else {
        TraceFormat::Text
    }
}

fn cmd_record(dir: &str) -> i32 {
    std::fs::create_dir_all(dir).expect("create output directory");
    for (app, ranks, _) in record_apps() {
        for r in &ranks {
            let path = format!("{dir}/{app}_rank{}.trace", r.rank);
            let bytes = r.trace.as_deref().unwrap();
            std::fs::write(&path, bytes).expect("write trace");
            println!(
                "wrote {path} ({} bytes {}, {} races live)",
                bytes.len(),
                sniff(bytes).name(),
                r.races.len()
            );
        }
    }
    0
}

fn cmd_replay(files: &[String]) -> i32 {
    let mut status = 0;
    for f in files {
        let bytes = match std::fs::read(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{f}: {e}");
                status = 1;
                continue;
            }
        };
        match Trace::from_bytes(&bytes) {
            Ok(trace) => {
                let start = Instant::now();
                let outcome = replay(&trace);
                let dt = start.elapsed();
                println!(
                    "{f}: rank {} — {} events ({}), {} races, {} fiber switches, {:.2?}",
                    trace.rank,
                    trace.events.len(),
                    sniff(&bytes).name(),
                    outcome.reports.len(),
                    outcome.stats.fiber_switches,
                    dt
                );
                for rep in &outcome.reports {
                    println!("{rep}");
                }
            }
            Err(e) => {
                eprintln!("{f}: parse error: {e}");
                status = 1;
            }
        }
    }
    status
}

fn cmd_transcode(input: &str, output: &str) -> i32 {
    let bytes = match std::fs::read(input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{input}: {e}");
            return 1;
        }
    };
    let to = match sniff(&bytes) {
        TraceFormat::Text => TraceFormat::Binary,
        TraceFormat::Binary => TraceFormat::Text,
    };
    match transcode(&bytes[..], to) {
        Ok(out) => {
            std::fs::write(output, &out).expect("write transcoded trace");
            println!(
                "{input} ({} bytes {}) -> {output} ({} bytes {})",
                bytes.len(),
                sniff(&bytes).name(),
                out.len(),
                to.name()
            );
            0
        }
        Err(e) => {
            eprintln!("{input}: transcode error: {e}");
            1
        }
    }
}

fn cmd_check() -> i32 {
    banner(
        "trace record/replay fidelity check",
        "records Jacobi + TeaLeaf (MUST & CuSan), replays each rank's trace\n\
         plus its transcoded twin in the other format, and compares race\n\
         reports, detector stats, and event counters",
    );
    let mut errs = Vec::new();
    for (app, ranks, live) in record_apps() {
        let mut replay_total = Duration::ZERO;
        let mut events = 0usize;
        for r in &ranks {
            let start = Instant::now();
            errs.extend(verify_rank(app, r));
            replay_total += start.elapsed();
            if let Some(t) = &r.trace {
                events += Trace::from_bytes(t).map(|t| t.events.len()).unwrap_or(0);
            }
        }
        println!(
            "{app:<8} live {live:>10.2?}  replay {replay_total:>10.2?}  ({events} events, {} ranks)",
            ranks.len()
        );
    }
    if errs.is_empty() {
        println!("OK: replay reproduced every live report and counter exactly, in both formats");
        0
    } else {
        for e in &errs {
            eprintln!("MISMATCH: {e}");
        }
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => {
            let dir = args.get(1).map(String::as_str).unwrap_or("traces");
            cmd_record(dir)
        }
        Some("replay") if args.len() > 1 => cmd_replay(&args[1..]),
        Some("transcode") if args.len() == 3 => cmd_transcode(&args[1], &args[2]),
        Some("check") | None => cmd_check(),
        _ => {
            eprintln!(
                "usage: replay_trace [record <dir> | replay <file>... | transcode <in> <out> | check]"
            );
            2
        }
    };
    std::process::exit(code);
}
