//! Record / replay driver for the event-pipeline trace format.
//!
//! A recorded trace replays the exact event stream a rank emitted through
//! a fresh detector, offline — no device, no MPI, no application. Because
//! the checker sink is the single apply path for both the live run and
//! the replay, the replay must reproduce the live race reports, detector
//! counters, and Table-I event counters bit-for-bit; `check` verifies
//! exactly that and exits non-zero on any divergence.
//!
//! Usage:
//!
//! ```text
//! replay_trace record <dir>      record Jacobi + TeaLeaf (MUST & CuSan)
//!                                and write one .trace file per rank
//! replay_trace replay <file>...  replay traces, print reports + stats
//! replay_trace check             record, replay, compare live vs replay
//!                                (the CI gate), with timing
//! ```

use cusan::{replay, Flavor, Trace};
use cusan_apps::{run_jacobi_traced, run_tealeaf_traced, JacobiConfig, TeaLeafConfig};
use cusan_bench::banner;
use must_rt::RankOutcome;
use std::time::{Duration, Instant};

fn small_jacobi() -> JacobiConfig {
    JacobiConfig {
        nx: 64,
        ny: 32,
        ranks: 2,
        iters: 4,
        ..JacobiConfig::default()
    }
}

fn small_tealeaf() -> TeaLeafConfig {
    TeaLeafConfig {
        nx: 16,
        ny: 16,
        ranks: 2,
        steps: 1,
        ..TeaLeafConfig::default()
    }
}

/// Record both mini-apps; returns (app name, live rank outcomes, live wall
/// time) per app.
fn record_apps() -> Vec<(&'static str, Vec<RankOutcome>, Duration)> {
    let j = run_jacobi_traced(&small_jacobi(), Flavor::MustCusan);
    let t = run_tealeaf_traced(&small_tealeaf(), Flavor::MustCusan);
    vec![
        ("jacobi", j.outcome.ranks, j.elapsed),
        ("tealeaf", t.outcome.ranks, t.elapsed),
    ]
}

/// Compare one rank's live outcome against its trace replay. Returns the
/// list of mismatch descriptions (empty = faithful replay).
fn verify_rank(app: &str, rank: &RankOutcome) -> Vec<String> {
    let mut errs = Vec::new();
    let text = rank.trace.as_deref().expect("traced run carries a trace");
    let trace = match Trace::parse(text) {
        Ok(t) => t,
        Err(e) => return vec![format!("{app} rank {}: trace parse error: {e}", rank.rank)],
    };
    let outcome = replay(&trace);
    if outcome.reports != rank.races {
        errs.push(format!(
            "{app} rank {}: race reports diverge (live {} vs replay {})",
            rank.rank,
            rank.races.len(),
            outcome.reports.len()
        ));
    }
    if outcome.stats != rank.tsan {
        errs.push(format!(
            "{app} rank {}: detector stats diverge\n  live:   {:?}\n  replay: {:?}",
            rank.rank, rank.tsan, outcome.stats
        ));
    }
    if outcome.counters != rank.events {
        errs.push(format!(
            "{app} rank {}: event counters diverge\n  live:   {:?}\n  replay: {:?}",
            rank.rank, rank.events, outcome.counters
        ));
    }
    // The CounterBump mirror of the device's Table-I CUDA rows.
    let cuda = [
        ("cuda.streams", rank.cuda.streams),
        ("cuda.memset_calls", rank.cuda.memset_calls),
        ("cuda.memcpy_calls", rank.cuda.memcpy_calls),
        ("cuda.sync_calls", rank.cuda.sync_calls),
        ("cuda.kernel_calls", rank.cuda.kernel_calls),
    ];
    for (name, live) in cuda {
        let replayed = outcome.counters.named(name);
        if replayed != live {
            errs.push(format!(
                "{app} rank {}: {name} diverges (device {live} vs replay {replayed})",
                rank.rank
            ));
        }
    }
    errs
}

fn cmd_record(dir: &str) -> i32 {
    std::fs::create_dir_all(dir).expect("create output directory");
    for (app, ranks, _) in record_apps() {
        for r in &ranks {
            let path = format!("{dir}/{app}_rank{}.trace", r.rank);
            let text = r.trace.as_deref().unwrap();
            std::fs::write(&path, text).expect("write trace");
            println!(
                "wrote {path} ({} bytes, {} races live)",
                text.len(),
                r.races.len()
            );
        }
    }
    0
}

fn cmd_replay(files: &[String]) -> i32 {
    let mut status = 0;
    for f in files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{f}: {e}");
                status = 1;
                continue;
            }
        };
        match Trace::parse(&text) {
            Ok(trace) => {
                let start = Instant::now();
                let outcome = replay(&trace);
                let dt = start.elapsed();
                println!(
                    "{f}: rank {} — {} events, {} races, {} fiber switches, {:.2?}",
                    trace.rank,
                    trace.events.len(),
                    outcome.reports.len(),
                    outcome.stats.fiber_switches,
                    dt
                );
                for rep in &outcome.reports {
                    println!("{rep}");
                }
            }
            Err(e) => {
                eprintln!("{f}: parse error: {e}");
                status = 1;
            }
        }
    }
    status
}

fn cmd_check() -> i32 {
    banner(
        "trace record/replay fidelity check",
        "records Jacobi + TeaLeaf (MUST & CuSan), replays each rank's trace,\n\
         and compares race reports, detector stats, and event counters",
    );
    let mut errs = Vec::new();
    for (app, ranks, live) in record_apps() {
        let mut replay_total = Duration::ZERO;
        let mut events = 0usize;
        for r in &ranks {
            let start = Instant::now();
            errs.extend(verify_rank(app, r));
            replay_total += start.elapsed();
            if let Some(t) = &r.trace {
                events += Trace::parse(t).map(|t| t.events.len()).unwrap_or(0);
            }
        }
        println!(
            "{app:<8} live {live:>10.2?}  replay {replay_total:>10.2?}  ({events} events, {} ranks)",
            ranks.len()
        );
    }
    if errs.is_empty() {
        println!("OK: replay reproduced every live report and counter exactly");
        0
    } else {
        for e in &errs {
            eprintln!("MISMATCH: {e}");
        }
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => {
            let dir = args.get(1).map(String::as_str).unwrap_or("traces");
            cmd_record(dir)
        }
        Some("replay") if args.len() > 1 => cmd_replay(&args[1..]),
        Some("check") | None => cmd_check(),
        _ => {
            eprintln!("usage: replay_trace [record <dir> | replay <file>... | check]");
            2
        }
    };
    std::process::exit(code);
}
