//! Trace-encoding footprint + ingest throughput: text (v2) vs binary (v3).
//!
//! Records TeaLeaf and Jacobi through the MUST & CuSan stack, takes each
//! rank's recording in both encodings (whichever the run produced, plus
//! its transcoded twin — transcoding is canonical, so the twin is exactly
//! what recording in the other format would have written), and measures:
//!
//!   * bytes per event in each format (the compression claim: the v3
//!     varint/delta codec must spend ≤ 1/2.5 the bytes of v2 text), and
//!   * decode + check throughput of each format through the solo replay
//!     path (`TraceReader` → `CheckSession::apply`), events per second.
//!
//! The golden TeaLeaf fixture joins the corpus so the numbers cover a
//! checked-in recording too. Every replayed summary is asserted identical
//! across formats — fidelity is part of the bench, not just the tests.
//!
//! Writes `BENCH_trace.json` to the current directory (override with
//! `CUSAN_BENCH_TRACE_JSON`) — uploaded by the `binary-trace-smoke` CI
//! job so future codec PRs have a bytes-per-event baseline to diff
//! against.

use cusan::{replay, transcode, Flavor, Trace, TraceFormat};
use cusan_apps::{run_jacobi_traced, run_tealeaf_traced, JacobiConfig, TeaLeafConfig};
use cusan_bench::{banner, bench_runs, measure};
use std::time::Instant;

const GOLDEN_FIXTURE: &str = include_str!("../../../../tests/data/tealeaf_small.trace");

/// One recording in both encodings, with its parsed event count.
struct Twin {
    name: String,
    text: Vec<u8>,
    binary: Vec<u8>,
    events: usize,
}

fn twin(name: String, recorded: Vec<u8>) -> Twin {
    let (text, binary) = if recorded.starts_with(cusan::binio::BIN_FAMILY) {
        let text =
            transcode(&recorded[..], TraceFormat::Text).expect("binary recording transcodes");
        (text, recorded)
    } else {
        let bin = transcode(&recorded[..], TraceFormat::Binary).expect("text recording transcodes");
        (recorded, bin)
    };
    let events = Trace::from_bytes(&text)
        .expect("recording parses")
        .events
        .len();
    Twin {
        name,
        text,
        binary,
        events,
    }
}

fn corpus() -> Vec<Twin> {
    let mut twins = vec![twin("tealeaf_golden".into(), GOLDEN_FIXTURE.into())];
    let j = run_jacobi_traced(
        &JacobiConfig {
            nx: 256,
            ny: 128,
            ranks: 2,
            iters: 8,
            ..JacobiConfig::default()
        },
        Flavor::MustCusan,
    );
    let t = run_tealeaf_traced(
        &TeaLeafConfig {
            nx: 32,
            ny: 32,
            ranks: 2,
            steps: 2,
            ..TeaLeafConfig::default()
        },
        Flavor::MustCusan,
    );
    let ranks = j
        .outcome
        .ranks
        .into_iter()
        .map(|r| ("jacobi", r))
        .chain(t.outcome.ranks.into_iter().map(|r| ("tealeaf", r)));
    for (app, r) in ranks {
        twins.push(twin(
            format!("{app}_rank{}", r.rank),
            r.trace.expect("traced run carries a trace"),
        ));
    }
    twins
}

/// Wall time to fully decode + check every trace in `traces` once.
fn replay_pass(traces: &[&[u8]]) -> std::time::Duration {
    let started = Instant::now();
    for t in traces {
        let trace = Trace::from_bytes(t).expect("parse");
        std::hint::black_box(replay(&trace));
    }
    started.elapsed()
}

fn main() {
    let runs = bench_runs();
    let corpus = corpus();
    banner(
        "trace encoding — v2 text vs v3 binary",
        &format!(
            "{} recordings (golden fixture + live Jacobi/TeaLeaf ranks) | mean of {runs} runs (+1 warmup)",
            corpus.len()
        ),
    );

    // Fidelity first: both encodings of every recording replay to the
    // same summary.
    for tw in &corpus {
        let t = replay(&Trace::from_bytes(&tw.text).unwrap());
        let b = replay(&Trace::from_bytes(&tw.binary).unwrap());
        assert_eq!(t.reports, b.reports, "{}: reports diverge", tw.name);
        assert_eq!(t.stats, b.stats, "{}: stats diverge", tw.name);
        assert_eq!(t.counters, b.counters, "{}: counters diverge", tw.name);
    }

    let total_events: usize = corpus.iter().map(|t| t.events).sum();
    let text_bytes: usize = corpus.iter().map(|t| t.text.len()).sum();
    let bin_bytes: usize = corpus.iter().map(|t| t.binary.len()).sum();
    let text_bpe = text_bytes as f64 / total_events.max(1) as f64;
    let bin_bpe = bin_bytes as f64 / total_events.max(1) as f64;
    let reduction = text_bpe / bin_bpe;

    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>9} {:>9}",
        "Recording", "Text B", "Binary B", "Events", "Text B/e", "Bin B/e"
    );
    println!("{:-<72}", "");
    for tw in &corpus {
        println!(
            "{:<20} {:>10} {:>10} {:>8} {:>9.2} {:>9.2}",
            tw.name,
            tw.text.len(),
            tw.binary.len(),
            tw.events,
            tw.text.len() as f64 / tw.events.max(1) as f64,
            tw.binary.len() as f64 / tw.events.max(1) as f64,
        );
    }
    println!("{:-<72}", "");
    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>9.2} {:>9.2}   ({reduction:.2}x)",
        "total", text_bytes, bin_bytes, total_events, text_bpe, bin_bpe
    );

    // Throughput: decode + full check of the whole corpus, per format.
    let text_refs: Vec<&[u8]> = corpus.iter().map(|t| t.text.as_slice()).collect();
    let bin_refs: Vec<&[u8]> = corpus.iter().map(|t| t.binary.as_slice()).collect();
    let text_time = measure(runs, || replay_pass(&text_refs));
    let bin_time = measure(runs, || replay_pass(&bin_refs));
    let text_eps = total_events as f64 / text_time.as_secs_f64().max(1e-9);
    let bin_eps = total_events as f64 / bin_time.as_secs_f64().max(1e-9);
    let text_mbs = text_bytes as f64 / 1e6 / text_time.as_secs_f64().max(1e-9);
    let bin_mbs = bin_bytes as f64 / 1e6 / bin_time.as_secs_f64().max(1e-9);
    println!();
    println!(
        "ingest (decode+check): text {text_time:.2?} ({text_eps:.0} ev/s, {text_mbs:.1} MB/s) | \
         binary {bin_time:.2?} ({bin_eps:.0} ev/s, {bin_mbs:.1} MB/s) | {:.2}x",
        text_time.as_secs_f64() / bin_time.as_secs_f64().max(1e-9)
    );

    // Hand-rolled JSON: the workspace is offline, so no serde.
    let json = format!(
        "{{\n  \"benchmark\": \"trace\",\n  \"recordings\": {},\n  \"runs\": {runs},\n  \
         \"total_events\": {total_events},\n  \"text_bytes\": {text_bytes},\n  \
         \"binary_bytes\": {bin_bytes},\n  \"text_bytes_per_event\": {text_bpe:.3},\n  \
         \"binary_bytes_per_event\": {bin_bpe:.3},\n  \"bytes_per_event_reduction\": {reduction:.3},\n  \
         \"text_replay_ns\": {},\n  \"binary_replay_ns\": {},\n  \
         \"text_events_per_sec\": {text_eps:.0},\n  \"binary_events_per_sec\": {bin_eps:.0},\n  \
         \"ingest_speedup\": {:.3}\n}}\n",
        corpus.len(),
        text_time.as_nanos(),
        bin_time.as_nanos(),
        text_time.as_secs_f64() / bin_time.as_secs_f64().max(1e-9),
    );
    let path =
        std::env::var("CUSAN_BENCH_TRACE_JSON").unwrap_or_else(|_| "BENCH_trace.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    // The headline gate: ≥ 2.5x fewer bytes per event.
    assert!(
        reduction >= 2.5,
        "binary encoding only {reduction:.2}x smaller per event (target 2.5x)"
    );
}
