//! Extension figure — tool overhead on the 2-D–decomposed Jacobi solver.
//!
//! Not a paper experiment (the paper evaluates the 1-D-decomposed NVIDIA
//! Jacobi); this binary applies the Fig. 10 methodology to the
//! `jacobi2d` extension app, whose pitched column-halo packs make it the
//! showcase for bounded access tracking: the final row runs the full
//! checker with `bounded_tracking` enabled.

use cusan::Flavor;
use cusan_apps::{run_jacobi2d, Jacobi2dConfig};
use cusan_bench::{banner, bench_runs, env_u64, measure, rel, INSTRUMENTED};

fn main() {
    let runs = bench_runs();
    let cfg = Jacobi2dConfig {
        nx: env_u64("CUSAN_BENCH_JACOBI2D_N", 256),
        ny: env_u64("CUSAN_BENCH_JACOBI2D_N", 256),
        px: 2,
        py: 2,
        iters: env_u64("CUSAN_BENCH_JACOBI2D_ITERS", 30) as u32,
        ..Jacobi2dConfig::default()
    };
    banner(
        "Extension — relative runtime overhead on 2-D-decomposed Jacobi",
        &format!(
            "{}x{} on a {}x{} rank grid, {} iterations, mean of {runs} runs (+1 warmup)",
            cfg.nx, cfg.ny, cfg.px, cfg.py, cfg.iters
        ),
    );

    let vanilla = measure(runs, || run_jacobi2d(&cfg, Flavor::Vanilla).elapsed);
    println!("Vanilla runtime: {:.3} s\n", vanilla.as_secs_f64());
    println!("{:<30} {:>10}", "Flavor", "Rel.");
    println!("{:<30} {:>10}", "Vanilla", "1.00x");
    for flavor in INSTRUMENTED {
        let t = measure(runs, || run_jacobi2d(&cfg, flavor).elapsed);
        println!("{:<30} {:>9.2}x", flavor.to_string(), rel(t, vanilla));
    }
    let mut bounded = Flavor::MustCusan.config();
    bounded.bounded_tracking = true;
    let t = measure(runs, || run_jacobi2d(&cfg, bounded).elapsed);
    println!(
        "{:<30} {:>9.2}x",
        "MUST & CuSan + bounded (§VI-D)",
        rel(t, vanilla)
    );
}
