//! Shadow-tier microbenchmark with a JSON trajectory record.
//!
//! Times the three `shadow_access_range` cases (cold page-aligned large
//! range, repeated identical range, partial-overlap unfold) with tiering
//! on and off, prints a table, and writes `BENCH_shadow.json` to the
//! current directory (override with `CUSAN_BENCH_SHADOW_JSON`) so future
//! PRs have a perf baseline to diff against.
//!
//! Targets from the tiered-shadow change: ≥ 5× on the repeated
//! whole-buffer case and ≥ 2× on cold page-aligned ranges.
//!
//! The partial-unfold pair needs careful reading. `partial_unfold_64pages`
//! times *only* the partial writes, after an untimed setup — which hands
//! the flat walk its slot-array allocation for free while the tiered
//! shadow pays it inside the timed region (unfolding a summary is where
//! the flat representation is first materialized, and on this container
//! first-touch page faults dominate everything else in the loop). That
//! asymmetry is the whole 0.0x "cliff"; the unfold itself replicates only
//! the live summary prefix and adds no work beyond the deferred
//! allocation. `unfold_cold_total_64pages` times the same workload
//! end-to-end (summarize/cold-walk + partial writes) so both modes
//! account their allocation, and carries the regression assertion:
//! tiered must land within ~4× of the flat walk (it is expected to win,
//! since summaries make the setup nearly free).

use cusan_bench::{banner, env_u64, fmt_bytes};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tsan_rt::TsanRuntime;

const COLD_LEN: u64 = 1 << 20;
const REPEATS: u64 = 256;

struct Case {
    name: &'static str,
    /// Bytes of shadow-annotated traffic one timed invocation covers.
    bytes: u64,
    tiered: Duration,
    flat: Duration,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.flat.as_secs_f64() / self.tiered.as_secs_f64().max(1e-12)
    }
}

fn time_case(runs: usize, tiered: bool, f: impl Fn(&mut TsanRuntime) -> Duration) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let mut rt = TsanRuntime::with_shadow_tiering("bench", tiered);
        best = best.min(f(&mut rt));
    }
    best
}

/// Cold: first-touch page-covering write of a 1 MiB buffer.
fn cold(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("cold");
    let t = Instant::now();
    rt.write_range(0x10_0000, COLD_LEN, ctx);
    t.elapsed()
}

/// Repeated: one cold write, then `REPEATS` identical re-annotations
/// (the Jacobi/TeaLeaf iteration-loop shape). Reported per whole batch.
fn repeated(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("repeat");
    rt.write_range(0x10_0000, COLD_LEN, ctx);
    let t = Instant::now();
    for _ in 0..REPEATS {
        rt.write_range(0x10_0000, COLD_LEN, ctx);
    }
    t.elapsed()
}

/// Unfold: summarize 64 pages, then split each with a partial write.
fn unfold(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("unfold");
    rt.write_range(0x10_0000, 64 * 4096, ctx);
    let t = Instant::now();
    for p in 0..64u64 {
        rt.write_range(0x10_0040 + p * 4096, 128, ctx);
    }
    t.elapsed()
}

/// Unfold, end-to-end: same workload as [`unfold`] but the setup write is
/// *inside* the timed region, so the flat walk pays its cold slot-array
/// allocation in the measurement just like the tiered unfold does.
fn unfold_total(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("unfold");
    let t = Instant::now();
    rt.write_range(0x10_0000, 64 * 4096, ctx);
    for p in 0..64u64 {
        rt.write_range(0x10_0040 + p * 4096, 128, ctx);
    }
    t.elapsed()
}

fn main() {
    let runs = env_u64("CUSAN_BENCH_RUNS", 5) as usize;
    banner(
        "Shadow tiers — access_range fast-path microbenchmark",
        &format!("best of {runs} runs per case | tiered vs flat walk"),
    );

    let cases = [
        Case {
            name: "cold_1MiB",
            bytes: COLD_LEN,
            tiered: time_case(runs, true, cold),
            flat: time_case(runs, false, cold),
        },
        Case {
            name: "repeated_1MiB_x256",
            bytes: COLD_LEN * REPEATS,
            tiered: time_case(runs, true, repeated),
            flat: time_case(runs, false, repeated),
        },
        Case {
            name: "partial_unfold_64pages",
            bytes: 64 * 128,
            tiered: time_case(runs, true, unfold),
            flat: time_case(runs, false, unfold),
        },
        Case {
            name: "unfold_cold_total_64pages",
            bytes: 64 * 4096 + 64 * 128,
            tiered: time_case(runs, true, unfold_total),
            flat: time_case(runs, false, unfold_total),
        },
    ];

    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>9}",
        "Case", "Bytes", "Tiered", "Flat", "Speedup"
    );
    println!("{:-<72}", "");
    for c in &cases {
        println!(
            "{:<24} {:>12} {:>12.2?} {:>12.2?} {:>8.2}x",
            c.name,
            fmt_bytes(c.bytes),
            c.tiered,
            c.flat,
            c.speedup()
        );
    }

    // Hand-rolled JSON: the workspace is offline, so no serde.
    let mut json = String::from("{\n  \"benchmark\": \"shadow_access_range\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"bytes\": {}, \"tiered_ns\": {}, \"flat_ns\": {}, \"speedup\": {:.2}}}{}",
            c.name,
            c.bytes,
            c.tiered.as_nanos(),
            c.flat.as_nanos(),
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let path =
        std::env::var("CUSAN_BENCH_SHADOW_JSON").unwrap_or_else(|_| "BENCH_shadow.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    let repeated_ok = cases[1].speedup() >= 5.0;
    let cold_ok = cases[0].speedup() >= 2.0;
    let unfold_total_ok = cases[3].speedup() >= 0.25;
    println!(
        "targets: repeated >= 5x -> {} | cold >= 2x -> {} | unfold total within 4x of flat -> {}",
        if repeated_ok { "met" } else { "MISSED" },
        if cold_ok { "met" } else { "MISSED" },
        if unfold_total_ok { "met" } else { "MISSED" },
    );
    assert!(
        unfold_total_ok,
        "partial-unfold regression: end-to-end tiered run is {:.2}x of flat (must stay within 4x)",
        cases[3].speedup()
    );
}
