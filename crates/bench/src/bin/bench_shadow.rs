//! Shadow-tier microbenchmark with a JSON trajectory record.
//!
//! Times the three `shadow_access_range` cases (cold page-aligned large
//! range, repeated identical range, partial-overlap unfold) with tiering
//! on and off, prints a table, and writes `BENCH_shadow.json` to the
//! current directory (override with `CUSAN_BENCH_SHADOW_JSON`) so future
//! PRs have a perf baseline to diff against.
//!
//! Targets from the tiered-shadow change: ≥ 5× on the repeated
//! whole-buffer case and ≥ 2× on cold page-aligned ranges.
//!
//! The partial-unfold pair needs careful reading. `partial_unfold_64pages`
//! times *only* the partial writes, after an untimed setup — which hands
//! the flat walk its slot-array allocation for free while the tiered
//! shadow pays it inside the timed region (unfolding a summary is where
//! the flat representation is first materialized, and on this container
//! first-touch page faults dominate everything else in the loop). That
//! asymmetry is the whole 0.0x "cliff"; the unfold itself replicates only
//! the live summary prefix and adds no work beyond the deferred
//! allocation. `unfold_cold_total_64pages` times the same workload
//! end-to-end (summarize/cold-walk + partial writes) so both modes
//! account their allocation, and carries the regression assertion:
//! tiered must land within ~4× of the flat walk (it is expected to win,
//! since summaries make the setup nearly free).

use cusan::Flavor;
use cusan_apps::{run_jacobi, run_tealeaf};
use cusan_bench::{banner, env_u64, fmt_bytes, jacobi_config, tealeaf_config};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tsan_rt::{SyncKey, TsanRuntime, TsanStats};

const COLD_LEN: u64 = 1 << 20;
const REPEATS: u64 = 256;

struct Case {
    name: &'static str,
    /// Bytes of shadow-annotated traffic one timed invocation covers.
    bytes: u64,
    tiered: Duration,
    flat: Duration,
    /// True when the two modes do *not* pay the same costs inside the
    /// timed region (see the module docs on `partial_unfold_64pages`:
    /// flat gets its slot-array allocation for free in the untimed
    /// setup). Informational cases are reported but carry no target and
    /// must not be diffed as a regression signal.
    informational: bool,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.flat.as_secs_f64() / self.tiered.as_secs_f64().max(1e-12)
    }
}

fn time_case(runs: usize, tiered: bool, f: impl Fn(&mut TsanRuntime) -> Duration) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let mut rt = TsanRuntime::with_shadow_tiering("bench", tiered);
        best = best.min(f(&mut rt));
    }
    best
}

/// Time with every representation knob explicit (arena / epoch A/B runs).
fn time_opts(
    runs: usize,
    arena: bool,
    epoch: bool,
    f: impl Fn(&mut TsanRuntime) -> Duration,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let mut rt = TsanRuntime::with_options("bench", true, arena, epoch);
        best = best.min(f(&mut rt));
    }
    best
}

/// Cold: first-touch page-covering write of a 1 MiB buffer.
fn cold(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("cold");
    let t = Instant::now();
    rt.write_range(0x10_0000, COLD_LEN, ctx);
    t.elapsed()
}

/// Repeated: one cold write, then `REPEATS` identical re-annotations
/// (the Jacobi/TeaLeaf iteration-loop shape). Reported per whole batch.
fn repeated(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("repeat");
    rt.write_range(0x10_0000, COLD_LEN, ctx);
    let t = Instant::now();
    for _ in 0..REPEATS {
        rt.write_range(0x10_0000, COLD_LEN, ctx);
    }
    t.elapsed()
}

/// Unfold: summarize 64 pages, then split each with a partial write.
fn unfold(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("unfold");
    rt.write_range(0x10_0000, 64 * 4096, ctx);
    let t = Instant::now();
    for p in 0..64u64 {
        rt.write_range(0x10_0040 + p * 4096, 128, ctx);
    }
    t.elapsed()
}

/// Unfold, end-to-end: same workload as [`unfold`] but the setup write is
/// *inside* the timed region, so the flat walk pays its cold slot-array
/// allocation in the measurement just like the tiered unfold does.
fn unfold_total(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("unfold");
    let t = Instant::now();
    rt.write_range(0x10_0000, 64 * 4096, ctx);
    for p in 0..64u64 {
        rt.write_range(0x10_0040 + p * 4096, 128, ctx);
    }
    t.elapsed()
}

/// The arena A/B of [`unfold_total`]: one untimed unfold/discard cycle
/// first, so both allocation backends start warm — the arena's slabs are
/// carved and its free list holds the blocks; malloc's bins hold the
/// freed boxed arrays. Timing cold-against-cold instead would compare a
/// fresh slab mmap against malloc bins already warmed by the previous
/// best-of runs, which measures the process allocator's cache, not the
/// unfold path. The timed region is then exactly the end-to-end
/// summarize + 64-partial-unfold workload.
fn unfold_total_warm(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("unfold");
    rt.write_range(0x10_0000, 64 * 4096, ctx);
    for p in 0..64u64 {
        rt.write_range(0x10_0040 + p * 4096, 128, ctx);
    }
    for p in 0..64u64 {
        rt.discard_shadow_page(0x10_0000 + p * 4096);
    }
    let t = Instant::now();
    rt.write_range(0x10_0000, 64 * 4096, ctx);
    for p in 0..64u64 {
        rt.write_range(0x10_0040 + p * 4096, 128, ctx);
    }
    t.elapsed()
}

/// Recycle: the arena's steady state. Unfold 64 pages, discard them so
/// their slot blocks return to the free list, and do it again — eight
/// full cycles. Without the arena every cycle re-allocates 64 fresh
/// 16 KiB slot arrays; with it, cycles after the first pop recycled
/// blocks and overwrite them in place.
fn recycle(rt: &mut TsanRuntime) -> Duration {
    let ctx = rt.intern_ctx("recycle");
    let t = Instant::now();
    for _ in 0..8 {
        rt.write_range(0x10_0000, 64 * 4096, ctx);
        for p in 0..64u64 {
            rt.write_range(0x10_0040 + p * 4096, 128, ctx);
        }
        for p in 0..64u64 {
            rt.discard_shadow_page(0x10_0000 + p * 4096);
        }
    }
    t.elapsed()
}

/// The Jacobi/TeaLeaf sync-op mix, distilled (Table I proportions): one
/// stream fiber, bursts of device ops (sync switch in, completion
/// release, non-sync return) punctuated by host sync points that acquire
/// the stream's key. Returns the elapsed time; counter assertions on this
/// shape live in `main`.
fn sync_op_mix(rt: &mut TsanRuntime) -> Duration {
    let stream = rt.create_fiber("stream");
    let host = rt.host_fiber();
    let key = SyncKey(0x600);
    let t = Instant::now();
    for _ in 0..128 {
        for _ in 0..6 {
            rt.switch_to_fiber_sync(stream);
            rt.annotate_happens_before(key);
            rt.switch_to_fiber(host);
        }
        rt.annotate_happens_after(key); // cudaDeviceSynchronize
    }
    t.elapsed()
}

fn main() {
    let runs = env_u64("CUSAN_BENCH_RUNS", 5) as usize;
    banner(
        "Shadow tiers — access_range fast-path microbenchmark",
        &format!("best of {runs} runs per case | tiered vs flat walk"),
    );

    let cases = [
        Case {
            name: "cold_1MiB",
            bytes: COLD_LEN,
            tiered: time_case(runs, true, cold),
            flat: time_case(runs, false, cold),
            informational: false,
        },
        Case {
            name: "repeated_1MiB_x256",
            bytes: COLD_LEN * REPEATS,
            tiered: time_case(runs, true, repeated),
            flat: time_case(runs, false, repeated),
            informational: false,
        },
        Case {
            // Asymmetric by construction (flat's allocation is untimed)
            // — kept for the shape of the cliff, flagged informational;
            // `unfold_cold_total_64pages` below is the fair measurement.
            name: "partial_unfold_64pages",
            bytes: 64 * 128,
            tiered: time_case(runs, true, unfold),
            flat: time_case(runs, false, unfold),
            informational: true,
        },
        Case {
            name: "unfold_cold_total_64pages",
            bytes: 64 * 4096 + 64 * 128,
            tiered: time_case(runs, true, unfold_total),
            flat: time_case(runs, false, unfold_total),
            informational: false,
        },
    ];

    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>9}",
        "Case", "Bytes", "Tiered", "Flat", "Speedup"
    );
    println!("{:-<72}", "");
    for c in &cases {
        println!(
            "{:<24} {:>12} {:>12.2?} {:>12.2?} {:>8.2}x{}",
            c.name,
            fmt_bytes(c.bytes),
            c.tiered,
            c.flat,
            c.speedup(),
            if c.informational {
                "  (informational)"
            } else {
                ""
            }
        );
    }

    // ---- arena A/B: slab arena vs per-page boxed slot arrays --------------
    struct ArenaCase {
        name: &'static str,
        on: Duration,
        off: Duration,
    }
    impl ArenaCase {
        fn speedup(&self) -> f64 {
            self.off.as_secs_f64() / self.on.as_secs_f64().max(1e-12)
        }
    }
    let arena_cases = [
        ArenaCase {
            name: "unfold_cold_total_64pages",
            on: time_opts(runs, true, true, unfold_total_warm),
            off: time_opts(runs, false, true, unfold_total_warm),
        },
        ArenaCase {
            name: "unfold_recycle_64pages_x8",
            on: time_opts(runs, true, true, recycle),
            off: time_opts(runs, false, true, recycle),
        },
    ];
    println!();
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "Arena case", "Arena on", "Arena off", "Speedup"
    );
    println!("{:-<64}", "");
    for c in &arena_cases {
        println!(
            "{:<28} {:>12.2?} {:>12.2?} {:>8.2}x",
            c.name,
            c.on,
            c.off,
            c.speedup()
        );
    }

    // ---- epoch clocks: the sync-op mix, compressed vs join-always ---------
    let epoch_on = time_opts(runs, true, true, sync_op_mix);
    let epoch_off = time_opts(runs, true, false, sync_op_mix);
    let mix_stats = {
        let mut rt = TsanRuntime::with_options("bench", true, true, true);
        sync_op_mix(&mut rt);
        rt.stats()
    };
    println!();
    println!(
        "sync_op_mix (128 bursts x 6 device ops): epoch {:.2?} | join-always {:.2?} | {:.2}x",
        epoch_on,
        epoch_off,
        epoch_off.as_secs_f64() / epoch_on.as_secs_f64().max(1e-12)
    );
    println!(
        "  epoch_fast_acquires {} | epoch_fast_releases {} | full_clock_joins {}",
        mix_stats.epoch_fast_acquires, mix_stats.epoch_fast_releases, mix_stats.full_clock_joins
    );

    // ---- the real apps: epoch/arena counters on the paper fixtures --------
    let app_stats = |name: &str| -> TsanStats {
        match name {
            "jacobi" => run_jacobi(&jacobi_config(), Flavor::Cusan).outcome.ranks[0].tsan,
            _ => run_tealeaf(&tealeaf_config(), Flavor::Cusan).outcome.ranks[0].tsan,
        }
    };
    let (jt, tt) = (app_stats("jacobi"), app_stats("tealeaf"));
    for (app, s) in [("jacobi", &jt), ("tealeaf", &tt)] {
        println!(
            "{app}: epoch_fast_acquires {} | full_clock_joins {} | arena_slabs_allocated {}",
            s.epoch_fast_acquires, s.full_clock_joins, s.arena_slabs_allocated
        );
    }

    // Hand-rolled JSON: the workspace is offline, so no serde.
    let mut json = String::from("{\n  \"benchmark\": \"shadow_access_range\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"bytes\": {}, \"tiered_ns\": {}, \"flat_ns\": {}, \"speedup\": {:.2}, \"informational\": {}}}{}",
            c.name,
            c.bytes,
            c.tiered.as_nanos(),
            c.flat.as_nanos(),
            c.speedup(),
            c.informational,
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"arena_cases\": [\n");
    for (i, c) in arena_cases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"arena_ns\": {}, \"no_arena_ns\": {}, \"speedup\": {:.2}}}{}",
            c.name,
            c.on.as_nanos(),
            c.off.as_nanos(),
            c.speedup(),
            if i + 1 < arena_cases.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"epoch_clocks\": {\n");
    let _ = writeln!(
        json,
        "    \"sync_op_mix\": {{\"epoch_ns\": {}, \"join_always_ns\": {}, \"epoch_fast_acquires\": {}, \"epoch_fast_releases\": {}, \"full_clock_joins\": {}}},",
        epoch_on.as_nanos(),
        epoch_off.as_nanos(),
        mix_stats.epoch_fast_acquires,
        mix_stats.epoch_fast_releases,
        mix_stats.full_clock_joins
    );
    let _ = writeln!(
        json,
        "    \"jacobi\": {{\"epoch_fast_acquires\": {}, \"epoch_fast_releases\": {}, \"full_clock_joins\": {}, \"arena_pages_reused\": {}, \"arena_slabs_allocated\": {}}},",
        jt.epoch_fast_acquires, jt.epoch_fast_releases, jt.full_clock_joins, jt.arena_pages_reused, jt.arena_slabs_allocated
    );
    let _ = writeln!(
        json,
        "    \"tealeaf\": {{\"epoch_fast_acquires\": {}, \"epoch_fast_releases\": {}, \"full_clock_joins\": {}, \"arena_pages_reused\": {}, \"arena_slabs_allocated\": {}}}",
        tt.epoch_fast_acquires, tt.epoch_fast_releases, tt.full_clock_joins, tt.arena_pages_reused, tt.arena_slabs_allocated
    );
    json.push_str("  }\n}\n");
    let path =
        std::env::var("CUSAN_BENCH_SHADOW_JSON").unwrap_or_else(|_| "BENCH_shadow.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    let repeated_ok = cases[1].speedup() >= 5.0;
    let cold_ok = cases[0].speedup() >= 2.0;
    let unfold_total_ok = cases[3].speedup() >= 0.25;
    let arena_ok = arena_cases[0].speedup() >= 1.5;
    let mix_ok = mix_stats.epoch_fast_acquires > mix_stats.full_clock_joins;
    let tealeaf_ok = tt.epoch_fast_acquires > 0 && tt.epoch_fast_acquires > tt.full_clock_joins;
    println!(
        "targets: repeated >= 5x -> {} | cold >= 2x -> {} | unfold total within 4x of flat -> {} \
         | arena cold unfold >= 1.5x -> {} | mix fast > joins -> {} | tealeaf fast > joins -> {}",
        if repeated_ok { "met" } else { "MISSED" },
        if cold_ok { "met" } else { "MISSED" },
        if unfold_total_ok { "met" } else { "MISSED" },
        if arena_ok { "met" } else { "MISSED" },
        if mix_ok { "met" } else { "MISSED" },
        if tealeaf_ok { "met" } else { "MISSED" },
    );
    assert!(
        unfold_total_ok,
        "partial-unfold regression: end-to-end tiered run is {:.2}x of flat (must stay within 4x)",
        cases[3].speedup()
    );
    assert!(
        arena_ok,
        "arena regression: cold unfold with the arena is only {:.2}x of boxed pages (floor 1.5x)",
        arena_cases[0].speedup()
    );
    assert!(
        mix_ok,
        "epoch regression: the sync-op mix should be dominated by fast paths ({mix_stats:?})"
    );
    assert!(
        tealeaf_ok,
        "epoch regression on the TeaLeaf fixture: fast acquires {} vs full joins {}",
        tt.epoch_fast_acquires, tt.full_clock_joins
    );
}
