//! # cusan-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (§V):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig10_runtime_overhead` | Fig. 10 — relative runtime per tool flavor |
//! | `fig11_memory_overhead` | Fig. 11 — relative memory per tool flavor |
//! | `table1_event_counters` | Table I — CUDA + TSan event counters |
//! | `fig12_jacobi_scaling` | Fig. 12 — overhead vs domain size + tracked bytes |
//! | `ablation_no_access_tracking` | §V-B claim — overhead without range annotations |
//!
//! Methodology follows the paper: each timing is the average over `runs`
//! measured executions after one uncounted warmup run (paper: 4 runs + 1
//! warmup; default here is 3 + 1, override with `CUSAN_BENCH_RUNS`).
//! Absolute numbers will differ from the paper (simulated substrate vs a
//! V100 cluster); the *shape* — which flavor costs what, and how overhead
//! scales with tracked memory — is the reproduction target.
//!
//! Environment knobs: `CUSAN_BENCH_RUNS`, `CUSAN_BENCH_JACOBI_NX/NY/ITERS`,
//! `CUSAN_BENCH_TEALEAF_NX/NY/STEPS`, `CUSAN_BENCH_RANKS`,
//! `CUSAN_BENCH_FULL=1` (enables the largest Fig. 12 domain),
//! `CUSAN_BENCH_RSS_BASELINE_MB` (Fig. 11 process-baseline model).

use cusan::Flavor;
use cusan_apps::{Jacobi2dConfig, JacobiConfig, TeaLeafConfig};
use std::time::Duration;

/// Read an env knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of measured runs (after one warmup).
pub fn bench_runs() -> usize {
    env_u64("CUSAN_BENCH_RUNS", 3) as usize
}

/// The Jacobi configuration used by the figure binaries.
pub fn jacobi_config() -> JacobiConfig {
    JacobiConfig {
        nx: env_u64("CUSAN_BENCH_JACOBI_NX", 1024),
        ny: env_u64("CUSAN_BENCH_JACOBI_NY", 512),
        ranks: env_u64("CUSAN_BENCH_RANKS", 2) as usize,
        iters: env_u64("CUSAN_BENCH_JACOBI_ITERS", 50) as u32,
        ..JacobiConfig::default()
    }
}

/// The TeaLeaf configuration used by the figure binaries.
pub fn tealeaf_config() -> TeaLeafConfig {
    TeaLeafConfig {
        nx: env_u64("CUSAN_BENCH_TEALEAF_NX", 64),
        ny: env_u64("CUSAN_BENCH_TEALEAF_NY", 64),
        ranks: env_u64("CUSAN_BENCH_RANKS", 2) as usize,
        steps: env_u64("CUSAN_BENCH_TEALEAF_STEPS", 2) as u32,
        ..TeaLeafConfig::default()
    }
}

/// The 2-D Jacobi configuration used by the figure binaries (fixed 2x2
/// rank grid; the domain and iteration knobs mirror the 1-D solver's).
pub fn jacobi2d_config() -> Jacobi2dConfig {
    Jacobi2dConfig {
        nx: env_u64("CUSAN_BENCH_JACOBI2D_NX", 128),
        ny: env_u64("CUSAN_BENCH_JACOBI2D_NY", 128),
        iters: env_u64("CUSAN_BENCH_JACOBI2D_ITERS", 20) as u32,
        ..Jacobi2dConfig::default()
    }
}

/// Mean wall time over `runs` invocations of `f` after one warmup.
pub fn measure(runs: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let _warmup = f();
    let total: Duration = (0..runs).map(|_| f()).sum();
    total / runs as u32
}

/// `a / b` as a relative factor.
pub fn rel(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64()
}

/// Pretty bytes.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// The four instrumented flavors, in figure order.
pub const INSTRUMENTED: [Flavor; 4] =
    [Flavor::Tsan, Flavor::Must, Flavor::Cusan, Flavor::MustCusan];

/// Print a figure/table banner.
pub fn banner(title: &str, detail: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_averages_excluding_warmup() {
        let mut calls = 0;
        let d = measure(4, || {
            calls += 1;
            Duration::from_millis(10)
        });
        assert_eq!(calls, 5, "1 warmup + 4 measured");
        assert_eq!(d, Duration::from_millis(10));
    }

    #[test]
    fn rel_factor() {
        assert!((rel(Duration::from_secs(3), Duration::from_secs(2)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn env_default_used_when_unset() {
        assert_eq!(env_u64("CUSAN_BENCH_DOES_NOT_EXIST", 7), 7);
    }
}
