//! Quickstart: detect a CUDA-aware MPI data race in ~60 lines.
//!
//! Reproduces the paper's Fig. 4 example: rank 0 fills a device buffer
//! with a kernel and sends it; rank 1 receives into device memory and
//! consumes it with a second kernel. Run once with the synchronization
//! bug (missing `cudaDeviceSynchronize`) and once fixed.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cuda_sim::StreamId;
use cusan::Flavor;
use cusan_apps::AppKernels;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::MpiDatatype;
use must_rt::run_checked_world;
use std::sync::Arc;

fn main() {
    let kernels = AppKernels::shared();
    for (label, synchronize) in [("BUGGY (no sync before MPI_Send)", false), ("FIXED", true)] {
        println!("=== {label} ===");
        let outcome = run_checked_world(
            2,
            Flavor::MustCusan,
            Arc::clone(&kernels.registry),
            move |ctx| {
                let n: u64 = 1 << 16;
                let d_data = ctx.cuda.malloc::<f64>(n).unwrap();
                if ctx.rank() == 0 {
                    // kernel<<<...>>>(d_data, n)
                    ctx.cuda
                        .launch(
                            kernels.fill,
                            LaunchGrid::linear(n),
                            StreamId::DEFAULT,
                            vec![
                                LaunchArg::Ptr(d_data),
                                LaunchArg::F64(42.0),
                                LaunchArg::I64(n as i64),
                            ],
                        )
                        .unwrap();
                    if synchronize {
                        ctx.cuda.device_synchronize().unwrap(); // Fig. 4 line 4
                    }
                    ctx.mpi.send(d_data, n, MpiDatatype::Double, 1, 0).unwrap();
                    f64::NAN
                } else {
                    let mut req = ctx.mpi.irecv(d_data, n, MpiDatatype::Double, 0, 0).unwrap();
                    ctx.mpi.wait(&mut req).unwrap(); // Fig. 4 line 8
                    ctx.tools
                        .host_read_slice::<f64>(&ctx.space(), d_data, 1, "verify")
                        .unwrap()[0]
                }
            },
        );
        println!("received value on rank 1: {}", outcome.results[1]);
        if outcome.has_races() {
            for (rank, race) in outcome.all_races() {
                println!("rank {rank} reported:\n{race}\n");
            }
        } else {
            println!("no data races detected\n");
        }
    }
}
