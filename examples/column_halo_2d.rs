//! Column-halo exchange with `cudaMemcpy2D` — a 2-D-decomposition
//! pattern exercising the extended API surface: pitched device copies,
//! events ordering two non-blocking streams, and `MPI_PROC_NULL`
//! boundaries.
//!
//! Two ranks own the left/right halves of a matrix. Each iteration packs
//! its boundary *column* into a contiguous buffer with a pitched copy on
//! a transfer stream (ordered after the compute stream by an event),
//! exchanges it with `MPI_Sendrecv`, and unpacks the peer's column.
//!
//! ```text
//! cargo run --example column_halo_2d            # correct: no races
//! cargo run --example column_halo_2d -- racy    # missing event: races
//! ```

use cuda_sim::{CopyKind, StreamFlags};
use cusan::Flavor;
use cusan_apps::AppKernels;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::MpiDatatype;
use must_rt::run_checked_world;
use std::sync::Arc;

const ROWS: u64 = 64;
const COLS: u64 = 32; // per-rank local columns + 2 halo columns
const ITERS: usize = 5;

fn main() {
    let racy = std::env::args().nth(1).as_deref() == Some("racy");
    let k = AppKernels::shared();
    let outcome = run_checked_world(2, Flavor::MustCusan, Arc::clone(&k.registry), move |ctx| {
        let me = ctx.rank();
        let peer = 1 - me as i64;
        let pitch = (COLS + 2) * 8; // row pitch in bytes (local + 2 halo columns)
        let local = ROWS * (COLS + 2);
        let field = ctx.cuda.malloc::<f64>(local).unwrap();
        let pack_tx = ctx.cuda.malloc::<f64>(ROWS).unwrap();
        let pack_rx = ctx.cuda.malloc::<f64>(ROWS).unwrap();

        let compute = ctx.cuda.stream_create(StreamFlags::NonBlocking);
        let transfer = ctx.cuda.stream_create(StreamFlags::NonBlocking);
        let ready = ctx.cuda.event_create();

        for it in 0..ITERS {
            // "Compute": update the whole local field on the compute stream.
            ctx.cuda
                .launch(
                    k.fill,
                    LaunchGrid::linear(local),
                    compute,
                    vec![
                        LaunchArg::Ptr(field),
                        LaunchArg::F64((me * 100 + it) as f64),
                        LaunchArg::I64(local as i64),
                    ],
                )
                .unwrap();
            // Order the transfer stream after the compute stream.
            ctx.cuda.event_record(ready, compute).unwrap();
            if !racy {
                ctx.cuda.stream_wait_event(transfer, ready).unwrap();
            }
            // Pack the boundary column (column index COLS for rank 0,
            // column 1 for rank 1) into a contiguous buffer: a pitched
            // D2D copy of ROWS rows x 8 bytes.
            let col = if me == 0 { COLS } else { 1 };
            ctx.cuda
                .memcpy_2d_async(
                    pack_tx,
                    8,
                    field.offset(col * 8),
                    pitch,
                    8,
                    ROWS,
                    CopyKind::DeviceToDevice,
                    transfer,
                )
                .unwrap();
            ctx.cuda.stream_synchronize(transfer).unwrap();
            // Exchange the packed columns (device pointers, CUDA-aware).
            ctx.mpi
                .sendrecv(
                    pack_tx,
                    ROWS,
                    peer,
                    7,
                    pack_rx,
                    ROWS,
                    peer as i32,
                    7,
                    MpiDatatype::Double,
                )
                .unwrap();
            // Unpack the received column into the halo column.
            let halo_col = if me == 0 { COLS + 1 } else { 0 };
            ctx.cuda
                .memcpy_2d(
                    field.offset(halo_col * 8),
                    pitch,
                    pack_rx,
                    8,
                    8,
                    ROWS,
                    CopyKind::DeviceToDevice,
                )
                .unwrap();
            ctx.cuda.device_synchronize().unwrap();
        }

        // Verify: the halo column carries the peer's last fill value.
        let halo_col = if me == 0 { COLS + 1 } else { 0 };
        let v: f64 = ctx
            .tools
            .host_read_at(&ctx.space(), field.offset(halo_col * 8), "verify halo")
            .unwrap();
        v
    });

    let expect = [(100 + ITERS - 1) as f64, (ITERS - 1) as f64];
    println!(
        "halo values: rank0 got {}, rank1 got {} (expected {:?})",
        outcome.results[0], outcome.results[1], expect
    );
    if outcome.has_races() {
        println!("\n{} race(s) detected:", outcome.total_races());
        for (rank, race) in outcome.all_races().into_iter().take(3) {
            println!("rank {rank}:\n{race}\n");
        }
    } else {
        println!("no data races detected");
    }
}
