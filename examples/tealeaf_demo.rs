//! Run the TeaLeaf-style CG heat-conduction mini-app under a chosen tool
//! flavor, with optional race injection into the non-blocking halo
//! exchange.
//!
//! ```text
//! cargo run --release --example tealeaf_demo -- [nx] [ny] [ranks] [flavor] [racy]
//! cargo run --release --example tealeaf_demo -- 64 64 2 must-cusan racy
//! ```

use cusan::Flavor;
use cusan_apps::{run_tealeaf, RaceMode, TeaLeafConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |i: usize, d: u64| args.get(i).map(|s| s.parse().expect("number")).unwrap_or(d);
    let flavor = match args.get(3).map(String::as_str).unwrap_or("must-cusan") {
        "vanilla" => Flavor::Vanilla,
        "tsan" => Flavor::Tsan,
        "must" => Flavor::Must,
        "cusan" => Flavor::Cusan,
        _ => Flavor::MustCusan,
    };
    let cfg = TeaLeafConfig {
        nx: get(0, 64),
        ny: get(1, 64),
        ranks: get(2, 2) as usize,
        race: if args.get(4).map(String::as_str) == Some("racy") {
            RaceMode::SkipSyncBeforeExchange
        } else {
            RaceMode::None
        },
        ..TeaLeafConfig::default()
    };

    println!(
        "TeaLeaf {}x{} on {} ranks, flavor {flavor}{}",
        cfg.nx,
        cfg.ny,
        cfg.ranks,
        if cfg.race == RaceMode::None {
            ""
        } else {
            " [race injected]"
        }
    );
    let run = run_tealeaf(&cfg, flavor);
    println!("elapsed: {:.3} s", run.elapsed.as_secs_f64());
    println!(
        "CG: {} iterations, converged = {}, relative residual = {:.3e}",
        run.cg.iterations,
        run.cg.converged,
        run.cg.rr / run.cg.bb
    );

    let r0 = &run.outcome.ranks[0];
    println!(
        "\nrank 0: {} kernel calls, {} memcpys, {} sync calls, {} streams",
        r0.cuda.kernel_calls, r0.cuda.memcpy_calls, r0.cuda.sync_calls, r0.cuda.streams
    );
    println!(
        "rank 0: {} fibers created / {} destroyed (one per non-blocking MPI request)",
        r0.tsan.fibers_created, r0.tsan.fibers_destroyed
    );

    println!("\n{}", must_rt::render_text(&run.outcome));
}
