//! Run the Jacobi mini-app under a chosen tool flavor and print the
//! paper-style summary: runtime, races, and the Table-I counter block.
//!
//! ```text
//! cargo run --release --example jacobi_demo -- [nx] [ny] [ranks] [iters] [flavor] [racy]
//! cargo run --release --example jacobi_demo -- 512 256 2 100 must-cusan
//! cargo run --release --example jacobi_demo -- 512 256 2 100 must-cusan racy
//! ```

use cusan::Flavor;
use cusan_apps::{run_jacobi, JacobiConfig, RaceMode};

fn parse_flavor(s: &str) -> Flavor {
    match s {
        "vanilla" => Flavor::Vanilla,
        "tsan" => Flavor::Tsan,
        "must" => Flavor::Must,
        "cusan" => Flavor::Cusan,
        "must-cusan" | "both" => Flavor::MustCusan,
        other => panic!("unknown flavor {other:?} (vanilla|tsan|must|cusan|must-cusan)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |i: usize, d: u64| args.get(i).map(|s| s.parse().expect("number")).unwrap_or(d);
    let cfg = JacobiConfig {
        nx: get(0, 512),
        ny: get(1, 256),
        ranks: get(2, 2) as usize,
        iters: get(3, 100) as u32,
        race: if args.get(5).map(String::as_str) == Some("racy") {
            RaceMode::SkipSyncBeforeExchange
        } else {
            RaceMode::None
        },
    };
    let flavor = parse_flavor(args.get(4).map(String::as_str).unwrap_or("must-cusan"));

    println!(
        "Jacobi {}x{} on {} ranks, {} iterations, flavor {flavor}{}",
        cfg.nx,
        cfg.ny,
        cfg.ranks,
        cfg.iters,
        if cfg.race == RaceMode::None {
            ""
        } else {
            " [race injected]"
        }
    );
    let run = run_jacobi(&cfg, flavor);
    println!("elapsed: {:.3} s", run.elapsed.as_secs_f64());
    println!("final residual norm: {:.6e}", run.final_norm);

    let r0 = &run.outcome.ranks[0];
    println!("\n-- rank 0 counters (Table I layout) --");
    println!("CUDA  Stream                 {:>12}", r0.cuda.streams);
    println!("CUDA  Memset                 {:>12}", r0.cuda.memset_calls);
    println!("CUDA  Memcpy                 {:>12}", r0.cuda.memcpy_calls);
    println!("CUDA  Synchronization calls  {:>12}", r0.cuda.sync_calls);
    println!("CUDA  Kernel calls           {:>12}", r0.cuda.kernel_calls);
    println!(
        "TSan  Switch To Fiber        {:>12}",
        r0.tsan.fiber_switches
    );
    println!(
        "TSan  AnnotateHappensBefore  {:>12}",
        r0.tsan.happens_before
    );
    println!("TSan  AnnotateHappensAfter   {:>12}", r0.tsan.happens_after);
    println!(
        "TSan  Memory Read Range      {:>12}",
        r0.tsan.read_range_calls
    );
    println!(
        "TSan  Memory Write Range     {:>12}",
        r0.tsan.write_range_calls
    );
    println!(
        "TSan  Memory Read Size [avg KB]  {:>12.2}",
        r0.tsan.avg_read_kb()
    );
    println!(
        "TSan  Memory Write Size [avg KB] {:>12.2}",
        r0.tsan.avg_write_kb()
    );

    if run.outcome.has_races() {
        println!("\n{} data race(s) detected:", run.outcome.total_races());
        for (rank, race) in run.outcome.all_races().into_iter().take(4) {
            println!("rank {rank}:\n{race}\n");
        }
    } else {
        println!("\nno data races detected");
    }
}
