//! Run the correctness testsuite and print `llvm-lit`-style output, like
//! the paper artifact's `make check-cutests`:
//!
//! ```text
//! PASS: CuSanTest :: cuda-to-mpi/send_device_sync (1 of 49)
//! ...
//! ```

use cusan_apps::testsuite::{cases, check_case};

fn main() {
    let all = cases();
    let total = all.len();
    let mut failed = 0;
    for (i, case) in all.iter().enumerate() {
        match check_case(case) {
            Ok(_) => println!("PASS: CuSanTest :: {} ({} of {total})", case.name, i + 1),
            Err(e) => {
                failed += 1;
                println!("FAIL: CuSanTest :: {} ({} of {total})", case.name, i + 1);
                for line in e.lines() {
                    println!("    {line}");
                }
            }
        }
    }
    println!();
    if failed == 0 {
        println!("Testing Time: all {total} tests passed");
    } else {
        println!("{failed} of {total} tests FAILED");
        std::process::exit(1);
    }
}
