//! Parse-stability gate for the trace format.
//!
//! `tests/data/tealeaf_small.trace` is a checked-in recording of TeaLeaf
//! (16×16, 1 step, 2 ranks, MUST & CuSan stack, rank 0). A format change
//! that cannot read existing recordings must fail here — bump the trace
//! magic and regenerate the fixture (`replay_trace record`) to change the
//! format deliberately.

use cusan::{replay, CusanEvent, Trace};

const FIXTURE: &str = include_str!("data/tealeaf_small.trace");

#[test]
fn golden_tealeaf_trace_parses() {
    let trace = Trace::parse(FIXTURE).expect("checked-in fixture must stay parseable");
    assert_eq!(trace.rank, 0);
    assert!(trace.tiered);
    assert_eq!(trace.events.len(), 2386);
    // Every referenced label resolved during parsing; spot-check the
    // interned vocabulary.
    let labels: Vec<&str> = (0..trace.strings.len() as u32)
        .map(|i| trace.strings.label(cusan::StrId(i)))
        .collect();
    assert!(labels.contains(&"cuda stream 0 (default)"));
    assert!(labels.contains(&"cuda.kernel_calls"));
    assert!(labels.iter().any(|l| l.starts_with("mpi req#")));
}

#[test]
fn golden_tealeaf_trace_replays_clean() {
    let trace = Trace::parse(FIXTURE).unwrap();
    let outcome = replay(&trace);
    // The recording is of a correct program: replay must agree.
    assert_eq!(outcome.reports, vec![]);
    assert_eq!(outcome.stats.fiber_switches, 586);
    assert!(outcome.stats.read_range_calls > 0);
    assert!(outcome.stats.write_range_calls > 0);
    // The Table-I CUDA rows recorded for this config.
    assert_eq!(outcome.counters.named("cuda.streams"), 1);
    assert!(outcome.counters.named("cuda.kernel_calls") > 0);
    assert_eq!(
        outcome.counters.requests_begun,
        outcome.counters.requests_completed
    );
    assert!(outcome.counters.requests_begun > 0);
}

#[test]
fn fixture_event_mix_matches_tealeaf_shape() {
    // TeaLeaf is the non-blocking app: one CUDA stream, many MPI request
    // fibers (paper Table I: fibers ≫ streams).
    let trace = Trace::parse(FIXTURE).unwrap();
    let creates = trace
        .events
        .iter()
        .filter(|e| matches!(e, CusanEvent::FiberCreate { .. }))
        .count();
    let destroys = trace
        .events
        .iter()
        .filter(|e| matches!(e, CusanEvent::FiberDestroy { .. }))
        .count();
    assert!(creates > 10, "one fiber per non-blocking request");
    // Every MPI request fiber is retired; only the stream fiber survives.
    assert_eq!(creates, destroys + 1);
}
