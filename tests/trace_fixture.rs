//! Parse-stability gate for the trace formats.
//!
//! `tests/data/tealeaf_small.trace` is a checked-in recording of TeaLeaf
//! (16×16, 1 step, 2 ranks, MUST & CuSan stack, rank 0);
//! `tests/data/tealeaf_small.trace.bin` is its binary (v3) twin, produced
//! by `replay_trace transcode`. A format change that cannot read existing
//! recordings must fail here — bump the trace magic and regenerate the
//! fixtures (`replay_trace record` / `replay_trace transcode`) to change
//! a format deliberately.

use cusan::{replay, transcode, CusanEvent, Trace, TraceFormat};

const FIXTURE: &str = include_str!("data/tealeaf_small.trace");
const FIXTURE_BIN: &[u8] = include_bytes!("data/tealeaf_small.trace.bin");

#[test]
fn golden_tealeaf_trace_parses() {
    let trace = Trace::parse(FIXTURE).expect("checked-in fixture must stay parseable");
    assert_eq!(trace.rank, 0);
    assert!(trace.tiered);
    assert_eq!(trace.events.len(), 2386);
    // Every referenced label resolved during parsing; spot-check the
    // interned vocabulary.
    let labels: Vec<&str> = (0..trace.strings.len() as u32)
        .map(|i| trace.strings.label(cusan::StrId(i)))
        .collect();
    assert!(labels.contains(&"cuda stream 0 (default)"));
    assert!(labels.contains(&"cuda.kernel_calls"));
    assert!(labels.iter().any(|l| l.starts_with("mpi req#")));
}

#[test]
fn golden_tealeaf_trace_replays_clean() {
    let trace = Trace::parse(FIXTURE).unwrap();
    let outcome = replay(&trace);
    // The recording is of a correct program: replay must agree.
    assert_eq!(outcome.reports, vec![]);
    assert_eq!(outcome.stats.fiber_switches, 586);
    assert!(outcome.stats.read_range_calls > 0);
    assert!(outcome.stats.write_range_calls > 0);
    // The Table-I CUDA rows recorded for this config.
    assert_eq!(outcome.counters.named("cuda.streams"), 1);
    assert!(outcome.counters.named("cuda.kernel_calls") > 0);
    assert_eq!(
        outcome.counters.requests_begun,
        outcome.counters.requests_completed
    );
    assert!(outcome.counters.requests_begun > 0);
}

#[test]
fn golden_binary_twin_stays_in_lockstep_with_text() {
    // The checked-in binary fixture is exactly what transcoding the text
    // fixture produces today — a codec change that alters the encoding
    // must regenerate it (and justify the new bytes in review).
    let encoded = transcode(FIXTURE.as_bytes(), TraceFormat::Binary)
        .expect("text fixture transcodes to binary");
    assert_eq!(
        encoded, FIXTURE_BIN,
        "binary fixture is stale: regenerate with `replay_trace transcode`"
    );
    // And back: binary → text reproduces the original recording exactly.
    let back = transcode(FIXTURE_BIN, TraceFormat::Text).expect("binary fixture transcodes back");
    assert_eq!(back, FIXTURE.as_bytes());
}

#[test]
fn golden_binary_twin_parses_and_replays_identically() {
    let text = Trace::parse(FIXTURE).unwrap();
    let bin =
        Trace::from_bytes(FIXTURE_BIN).expect("checked-in binary fixture must stay parseable");
    assert_eq!(bin.rank, text.rank);
    assert_eq!(bin.tiered, text.tiered);
    assert_eq!(bin.budget, text.budget);
    assert_eq!(bin.events, text.events);
    assert_eq!(bin.strings.len(), text.strings.len());
    let t = replay(&text);
    let b = replay(&bin);
    assert_eq!(b.reports, t.reports);
    assert_eq!(b.stats, t.stats);
    assert_eq!(b.counters, t.counters);
}

#[test]
fn binary_twin_meets_the_compression_target() {
    // The headline perf claim, gated on the checked-in recording: the v3
    // encoding spends ≤ 1/2.5 the bytes per event of the text format.
    let events = Trace::parse(FIXTURE).unwrap().events.len() as f64;
    let text_bpe = FIXTURE.len() as f64 / events;
    let bin_bpe = FIXTURE_BIN.len() as f64 / events;
    assert!(
        text_bpe / bin_bpe >= 2.5,
        "binary encoding only {:.2}x smaller per event (text {text_bpe:.2} B, binary {bin_bpe:.2} B)",
        text_bpe / bin_bpe
    );
}

#[test]
fn fixture_event_mix_matches_tealeaf_shape() {
    // TeaLeaf is the non-blocking app: one CUDA stream, many MPI request
    // fibers (paper Table I: fibers ≫ streams).
    let trace = Trace::parse(FIXTURE).unwrap();
    let creates = trace
        .events
        .iter()
        .filter(|e| matches!(e, CusanEvent::FiberCreate { .. }))
        .count();
    let destroys = trace
        .events
        .iter()
        .filter(|e| matches!(e, CusanEvent::FiberDestroy { .. }))
        .count();
    assert!(creates > 10, "one fiber per non-blocking request");
    // Every MPI request fiber is retired; only the stream fiber survives.
    assert_eq!(creates, destroys + 1);
}
