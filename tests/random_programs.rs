//! Randomized end-to-end soundness/effectiveness test of the full
//! MUST & CuSan stack.
//!
//! A generator produces random CUDA-aware MPI programs that are **correct
//! by construction**: it tracks which buffers have unsynchronized device
//! work and inserts a `cudaDeviceSynchronize` before any MPI transfer or
//! host access that would otherwise race.
//!
//! * Every generated program must be race-free under the full checker
//!   (soundness — no false positives, end to end).
//! * Mutants created by deleting one *load-bearing* synchronization must
//!   be detected in the vast majority of cases (effectiveness). Detection
//!   can legitimately be missed when the deleted sync is shadowed by a
//!   later implicit synchronization before the conflicting access, so the
//!   assertion is a high detection *rate*, not 100%.

use cuda_sim::{StreamFlags, StreamId};
use cusan::Flavor;
use cusan_apps::AppKernels;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::MpiDatatype;
use must_rt::{run_checked_world, RankCtx};
use std::sync::Arc;

const N_BUFS: usize = 3;
const BUF_ELEMS: u64 = 256;

/// Deterministic xorshift generator (keeps `rand` out of the deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Action {
    /// Launch a fill kernel writing `buf` on stream index `stream`.
    Kernel {
        buf: usize,
        stream: usize,
        value: f64,
    },
    /// `cudaDeviceSynchronize`.
    DeviceSync,
    /// Exchange `buf` with the peer (symmetric sendrecv into the rx
    /// shadow buffer of `buf`).
    Exchange { buf: usize },
    /// Instrumented host read of `buf`.
    HostTouch { buf: usize },
}

/// Stream indices: 0 = legacy default, 1 = blocking user, 2 = non-blocking.
///
/// Two *different* streams are mutually unordered iff one of them is the
/// non-blocking stream; the default and blocking user streams are ordered
/// against each other by the legacy barriers.
///
/// (An earlier version of this generator only synchronized before MPI and
/// host accesses; the checker then correctly flagged kernel-kernel
/// write-write races between the default and non-blocking streams — the
/// fuzzer finding a real bug in its own correctness discipline.)
fn streams_conflict(a: usize, b: usize) -> bool {
    a != b && (a == 2 || b == 2)
}

/// Generate a correct-by-construction program of `len` actions.
/// Returns the actions plus the indices of load-bearing DeviceSyncs
/// (those inserted to protect an immediately following access).
fn generate(rng: &mut Rng, len: usize) -> (Vec<Action>, Vec<usize>) {
    let mut actions = Vec::new();
    let mut load_bearing = Vec::new();
    // Streams with unsynchronized writes, per buffer.
    let mut writers: [Vec<usize>; N_BUFS] = Default::default();
    while actions.len() < len {
        match rng.below(4) {
            0 => {
                let buf = rng.below(N_BUFS as u64) as usize;
                let stream = rng.below(3) as usize;
                if writers[buf].iter().any(|&s| streams_conflict(s, stream)) {
                    load_bearing.push(actions.len());
                    actions.push(Action::DeviceSync);
                    writers = Default::default();
                }
                actions.push(Action::Kernel {
                    buf,
                    stream,
                    value: rng.below(1000) as f64,
                });
                writers[buf].push(stream);
            }
            1 => {
                actions.push(Action::DeviceSync);
                writers = Default::default();
            }
            2 => {
                let buf = rng.below(N_BUFS as u64) as usize;
                if !writers[buf].is_empty() {
                    load_bearing.push(actions.len());
                    actions.push(Action::DeviceSync);
                    writers = Default::default();
                }
                actions.push(Action::Exchange { buf });
            }
            _ => {
                let buf = rng.below(N_BUFS as u64) as usize;
                if !writers[buf].is_empty() {
                    load_bearing.push(actions.len());
                    actions.push(Action::DeviceSync);
                    writers = Default::default();
                }
                actions.push(Action::HostTouch { buf });
            }
        }
    }
    (actions, load_bearing)
}

fn execute(ctx: &mut RankCtx, k: &AppKernels, actions: &[Action]) {
    // Symmetric pairing: even ranks exchange with their odd successor.
    let me = ctx.rank();
    let peer = if me.is_multiple_of(2) { me + 1 } else { me - 1 } as i64;
    let bufs: Vec<_> = (0..N_BUFS)
        .map(|_| ctx.cuda.malloc::<f64>(BUF_ELEMS).unwrap())
        .collect();
    let rx: Vec<_> = (0..N_BUFS)
        .map(|_| ctx.cuda.malloc::<f64>(BUF_ELEMS).unwrap())
        .collect();
    let user = ctx.cuda.stream_create(StreamFlags::Default);
    let nb = ctx.cuda.stream_create(StreamFlags::NonBlocking);
    let streams = [StreamId::DEFAULT, user, nb];

    for a in actions {
        match *a {
            Action::Kernel { buf, stream, value } => {
                ctx.cuda
                    .launch(
                        k.fill,
                        LaunchGrid::linear(BUF_ELEMS),
                        streams[stream],
                        vec![
                            LaunchArg::Ptr(bufs[buf]),
                            LaunchArg::F64(value),
                            LaunchArg::I64(BUF_ELEMS as i64),
                        ],
                    )
                    .unwrap();
            }
            Action::DeviceSync => ctx.cuda.device_synchronize().unwrap(),
            Action::Exchange { buf } => {
                ctx.mpi
                    .sendrecv(
                        bufs[buf],
                        BUF_ELEMS,
                        peer,
                        buf as i32,
                        rx[buf],
                        BUF_ELEMS,
                        peer as i32,
                        buf as i32,
                        MpiDatatype::Double,
                    )
                    .unwrap();
            }
            Action::HostTouch { buf } => {
                let _ = ctx
                    .tools
                    .host_read_slice::<f64>(&ctx.space(), bufs[buf], BUF_ELEMS, "host touch")
                    .unwrap();
            }
        }
    }
}

fn run_program(actions: Vec<Action>) -> u64 {
    run_program_on(actions, 2)
}

fn run_program_on(actions: Vec<Action>, ranks: usize) -> u64 {
    let k = AppKernels::shared();
    let out = run_checked_world(
        ranks,
        Flavor::MustCusan,
        Arc::clone(&k.registry),
        move |ctx| {
            execute(ctx, k, &actions);
        },
    );
    out.total_races()
}

#[test]
fn correct_random_programs_never_race() {
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed);
        let (actions, _) = generate(&mut rng, 16);
        let races = run_program(actions.clone());
        assert_eq!(races, 0, "seed {seed} raced: {actions:?}");
    }
}

#[test]
fn sync_deleting_mutants_are_mostly_detected() {
    let mut detected = 0;
    let mut mutants = 0;
    for seed in 0..40u64 {
        let mut rng = Rng::new(seed);
        let (actions, load_bearing) = generate(&mut rng, 16);
        let Some(&victim) = load_bearing.first() else {
            continue;
        };
        let mut mutant = actions.clone();
        mutant.remove(victim);
        mutants += 1;
        if run_program(mutant) > 0 {
            detected += 1;
        }
    }
    assert!(
        mutants >= 20,
        "generator produced too few load-bearing syncs: {mutants}"
    );
    // A deleted sync can be shadowed by a later one arriving before the
    // protected access; requiring 70% guards against systematic misses.
    assert!(
        detected * 10 >= mutants * 7,
        "only {detected}/{mutants} sync-deletion mutants detected"
    );
}

#[test]
fn correct_random_programs_never_race_on_four_ranks() {
    for seed in 100..115u64 {
        let mut rng = Rng::new(seed);
        let (actions, _) = generate(&mut rng, 14);
        let races = run_program_on(actions.clone(), 4);
        assert_eq!(races, 0, "seed {seed} raced on 4 ranks: {actions:?}");
    }
}

#[test]
fn mutation_does_not_break_execution() {
    // Mutants must still run to completion (deferred execution never
    // deadlocks; data may be stale but the program terminates).
    let mut rng = Rng::new(123);
    let (actions, load_bearing) = generate(&mut rng, 20);
    if let Some(&victim) = load_bearing.first() {
        let mut mutant = actions;
        mutant.remove(victim);
        let _ = run_program(mutant); // must not panic or hang
    }
}
