//! Schedule exploration end-to-end (PR 10's headline):
//!
//! 1. The planted wildcard-receive race
//!    (`explore/wildcard_match_unsynced_branch_nok`) is *never* reported
//!    by the default schedule — running it plain, or under an
//!    all-defaults [`SchedulePlan`], is provably clean even though the
//!    wildcard choice point genuinely offers two candidates.
//! 2. [`explore::explore`] finds the race within a small budget by
//!    branching that one decision.
//! 3. Every explored schedule is itself deterministic: re-running the
//!    recorded choice vectors reproduces the per-rank traces
//!    byte-for-byte, and offline replay of those traces reproduces the
//!    live reports.
//! 4. The whole 60-program testsuite reports identical race sets under
//!    an installed all-defaults plan and under no controller at all —
//!    the controller hooks are semantically invisible at choice 0.
//! 5. (proptest) Legacy default-stream barriers hold under *every*
//!    explored completion order of independent user-stream ops.

use cusan_apps::testsuite::{
    cases, outcome_digest, run_case, run_case_scheduled, wildcard_schedule_race,
};
use cusan_apps::AppKernels;
use explore::{explore, ChoiceKind, SchedulePlan};
use kernel_ir::{LaunchArg, LaunchGrid};
use must_rt::{run_checked_world_scheduled_traced, RankCtx, WorldOutcome};
use proptest::prelude::*;
use std::sync::Arc;

/// Rank-tagged race report strings, sorted — the comparable "race set"
/// of a world run.
fn race_set(out: &WorldOutcome<()>) -> Vec<String> {
    let mut races: Vec<String> = out
        .all_races()
        .into_iter()
        .map(|(rank, r)| format!("rank {rank}: {r}"))
        .collect();
    races.sort();
    races
}

#[test]
fn default_schedule_never_reports_the_planted_race() {
    let case = wildcard_schedule_race();
    // Plain run (no controller at all).
    let out = run_case(&case);
    assert_eq!(
        out.races, 0,
        "default schedule must not see the planted race: {:?}",
        out.details
    );
    assert_eq!(out.must_reports, 0);
    // All-defaults plan: same execution, but the consultation log proves
    // the wildcard choice point was genuinely offered two candidates —
    // the race is hidden by the default pick, not by unreachability.
    let plan = SchedulePlan::defaults(2);
    let out = run_case_scheduled(&case, Arc::clone(&plan));
    assert_eq!(out.total_races(), 0);
    let wildcard_decisions: Vec<_> = plan
        .decisions(0)
        .into_iter()
        .filter(|d| d.kind == ChoiceKind::WildcardRecv)
        .collect();
    assert!(
        wildcard_decisions.iter().any(|d| d.arity >= 2),
        "the wildcard receive never became a real choice point: {wildcard_decisions:?}"
    );
    assert!(wildcard_decisions.iter().all(|d| d.chosen == 0));
}

#[test]
fn exploration_finds_the_planted_race_within_budget() {
    let case = wildcard_schedule_race();
    let report = explore(3, 8, |plan| {
        let out = run_case_scheduled(&case, Arc::clone(plan));
        (outcome_digest(&out), out)
    });
    assert!(
        report.stats.schedules_run <= 8,
        "budget exceeded: {:?}",
        report.stats
    );
    // Index 0 is always the default schedule — clean.
    assert_eq!(report.runs[0].value.total_races(), 0);
    let racy: Vec<_> = report
        .runs
        .iter()
        .filter(|r| r.value.total_races() > 0)
        .collect();
    assert!(
        !racy.is_empty(),
        "exploration missed the planted race: {:?}",
        report.stats
    );
    // The racy schedule is exactly one flipped wildcard decision on
    // rank 0's lane.
    assert!(racy.iter().any(|r| r.plan[0] == vec![1]));
    assert!(report.stats.frontier_exhausted);
}

#[test]
fn explored_schedules_replay_bit_for_bit() {
    let case = wildcard_schedule_race();
    let report = explore(3, 8, |plan| {
        let out = run_case_scheduled(&case, Arc::clone(plan));
        (outcome_digest(&out), out)
    });
    assert!(report.runs.len() >= 2);
    for run in &report.runs {
        // Deterministic re-execution: the same choice vectors reproduce
        // every rank's recorded trace byte-for-byte.
        let again = run_case_scheduled(&case, SchedulePlan::with_choices(run.plan.clone()));
        for (a, b) in run.value.ranks.iter().zip(again.ranks.iter()) {
            assert_eq!(
                a.trace, b.trace,
                "rank {} trace diverged across identical plans {:?}",
                a.rank, run.plan
            );
        }
        // Offline replay of the recorded trace reproduces the live run.
        for rank in &run.value.ranks {
            let bytes = rank.trace.as_ref().expect("scheduled runs are traced");
            let trace = cusan::Trace::from_bytes(bytes).expect("trace parses");
            let replayed = cusan::replay(&trace);
            assert_eq!(replayed.reports.len(), rank.races.len());
            for (a, b) in replayed.reports.iter().zip(rank.races.iter()) {
                assert_eq!(a.to_string(), b.to_string());
            }
            assert_eq!(replayed.counters, rank.events, "rank {}", rank.rank);
        }
    }
}

#[test]
fn testsuite_race_sets_are_identical_under_default_plan() {
    for case in cases() {
        let plain = run_case(&case);
        let planned = run_case_scheduled(&case, SchedulePlan::defaults(2));
        let mut plain_races: Vec<String> = plain
            .details
            .iter()
            .filter(|d| !d.contains("MUST:"))
            .cloned()
            .collect();
        plain_races.sort();
        assert_eq!(
            plain_races,
            race_set(&planned),
            "{}: race set changed under the all-defaults plan",
            case.name
        );
        assert_eq!(
            plain.must_reports,
            planned.all_must_reports().len(),
            "{}: MUST findings changed under the all-defaults plan",
            case.name
        );
    }
}

/// Launch the shared `fill` kernel on `s`.
fn fill_on(ctx: &mut RankCtx, k: &AppKernels, p: sim_mem::Ptr, s: cuda_sim::StreamId, n: u64) {
    ctx.cuda
        .launch(
            k.fill,
            LaunchGrid::linear(n),
            s,
            vec![
                LaunchArg::Ptr(p),
                LaunchArg::F64(1.0),
                LaunchArg::I64(n as i64),
            ],
        )
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite 4: under `DefaultStreamMode::Legacy` (the default), a
    /// default-stream launch forms an implicit barrier against prior
    /// work on blocking user streams. Whatever completion order the
    /// explorer picks for the independent user-stream fills — including
    /// a barrier-exempt NonBlocking stream mixed in — the barrier's
    /// happens-before holds and the detector reports no race.
    #[test]
    fn legacy_barriers_hold_under_explored_orders(nstreams in 2usize..5) {
        const M: u64 = 64;
        let k = AppKernels::shared();
        let report = explore(2, 10, |plan| {
            let out = run_checked_world_scheduled_traced(
                1,
                cusan::Flavor::MustCusan.config(),
                Arc::clone(&k.registry),
                Arc::clone(plan),
                move |ctx| {
                    let mut bufs = Vec::new();
                    for _ in 0..nstreams {
                        let s = ctx.cuda.stream_create(cuda_sim::StreamFlags::Default);
                        let b = ctx.cuda.malloc::<f64>(M).unwrap();
                        fill_on(ctx, k, b, s, M);
                        bufs.push(b);
                    }
                    // A NonBlocking stream filling its own private buffer:
                    // exempt from the barrier, but also never read below —
                    // race-free in every order.
                    let nb = ctx.cuda.stream_create(cuda_sim::StreamFlags::NonBlocking);
                    let private = ctx.cuda.malloc::<f64>(M).unwrap();
                    fill_on(ctx, k, private, nb, M);
                    // Default-stream launches reading every barrier-covered
                    // buffer: the implicit barrier orders them after ALL
                    // blocking-stream fills, no explicit sync needed.
                    let out = ctx.cuda.malloc::<f64>(M).unwrap();
                    for b in &bufs {
                        ctx.cuda
                            .launch(
                                k.copy,
                                LaunchGrid::linear(M),
                                cuda_sim::StreamId::DEFAULT,
                                vec![
                                    LaunchArg::Ptr(out),
                                    LaunchArg::Ptr(*b),
                                    LaunchArg::I64(M as i64),
                                ],
                            )
                            .unwrap();
                    }
                    ctx.cuda.device_synchronize().unwrap();
                    let v = ctx
                        .tools
                        .host_read_slice::<f64>(&ctx.space(), out, M, "host read")
                        .unwrap();
                    assert_eq!(v[0], 1.0);
                },
            );
            (outcome_digest(&out), out.total_races())
        });
        for run in &report.runs {
            prop_assert_eq!(
                run.value, 0,
                "legacy barrier violated under plan {:?}", run.plan
            );
        }
        // The drain genuinely offered alternatives to explore.
        prop_assert!(report.stats.schedules_run > 1, "{:?}", report.stats);
    }
}
