//! E5: the correctness testsuite (paper §VI-C).
//!
//! Every case must be classified correctly by the MUST & CuSan stack —
//! "for now, all tests are correctly classified by CuSan" is the property
//! the paper reports for its suite; this test enforces the same property
//! for the reproduction.

use cusan_apps::testsuite::{cases, check_case, Expected};

#[test]
fn every_case_is_classified_correctly() {
    let all = cases();
    let mut failures = Vec::new();
    for case in &all {
        if let Err(e) = check_case(case) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} cases misclassified:\n{}",
        failures.len(),
        all.len(),
        failures.join("\n---\n")
    );
}

#[test]
fn suite_shape_matches_paper() {
    let all = cases();
    // The artifact lists 49 tests; ours is the same order of magnitude
    // with both ok and nok variants per category.
    assert!(all.len() >= 45, "only {} cases", all.len());
    let ok = all.iter().filter(|c| c.expected == Expected::Clean).count();
    let nok = all.len() - ok;
    assert!(ok >= 15, "too few correct programs: {ok}");
    assert!(nok >= 15, "too few incorrect programs: {nok}");
}

/// Soundness sweep: correct programs must stay clean under EVERY flavor —
/// partial instrumentation (TSan-only, MUST-only, CuSan-only) may miss
/// races but must never invent one.
#[test]
fn clean_cases_are_clean_under_all_flavors() {
    use cusan::Flavor;
    use cusan_apps::AppKernels;
    use must_rt::run_checked_world;
    use std::sync::Arc;

    let k = AppKernels::shared();
    let mut checked = 0;
    for case in cases() {
        if case.expected != Expected::Clean {
            continue;
        }
        for flavor in [Flavor::Tsan, Flavor::Must, Flavor::Cusan] {
            let run = case.run;
            let out = run_checked_world(2, flavor, Arc::clone(&k.registry), move |ctx| {
                run(ctx, k);
            });
            assert_eq!(
                out.total_races(),
                0,
                "{} raced under {flavor}: {:#?}",
                case.name,
                out.all_races()
            );
            checked += 1;
        }
    }
    assert!(checked >= 45, "swept {checked} case-flavor combinations");
}

/// The racy programs misbehave *for real*: under Vanilla (no tools at
/// all), every `_nok` data-race case still executes — the simulator never
/// requires the checker for forward progress.
#[test]
fn racy_cases_execute_under_vanilla() {
    use cusan::Flavor;
    use cusan_apps::AppKernels;
    use must_rt::run_checked_world;
    use std::sync::Arc;

    let k = AppKernels::shared();
    for case in cases() {
        if case.expected != Expected::Race {
            continue;
        }
        let run = case.run;
        let out = run_checked_world(2, Flavor::Vanilla, Arc::clone(&k.registry), move |ctx| {
            run(ctx, k);
        });
        assert_eq!(
            out.total_races(),
            0,
            "{}: vanilla reports nothing",
            case.name
        );
    }
}

/// §VI-D detection preservation: bounded access tracking must classify
/// every testsuite case exactly like whole-allocation tracking — the
/// optimization trims annotation volume, never detection power, on this
/// suite.
#[test]
fn bounded_tracking_preserves_every_classification() {
    use cusan::Flavor;
    use cusan_apps::testsuite::check_case_with;

    let mut cfg = Flavor::MustCusan.config();
    cfg.bounded_tracking = true;
    let mut failures = Vec::new();
    for case in cases() {
        if let Err(e) = check_case_with(&case, cfg) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "bounded tracking changed classifications:\n{}",
        failures.join("\n---\n")
    );
}

/// The paper's §I motivation, quantified: "Tools that only observe a
/// subset [of parallelism levels] will find some issues but not all."
/// Run every racy case under every flavor and check the detection
/// hierarchy: the full stack catches everything; CuSan alone catches the
/// CUDA-side majority; MUST alone only the MPI-request races; TSan alone
/// essentially nothing (it sees neither CUDA nor MPI semantics).
#[test]
fn partial_tools_find_some_issues_but_not_all() {
    use cusan::Flavor;
    use cusan_apps::testsuite::run_case_with;

    let racy: Vec<_> = cases()
        .into_iter()
        .filter(|c| c.expected == Expected::Race)
        .collect();
    let total = racy.len();
    let detect = |flavor: Flavor| -> usize {
        racy.iter()
            .filter(|c| run_case_with(c, flavor.config()).races > 0)
            .count()
    };

    let full = detect(Flavor::MustCusan);
    let cusan_only = detect(Flavor::Cusan);
    let must_only = detect(Flavor::Must);
    let tsan_only = detect(Flavor::Tsan);

    println!(
        "detection: MUST&CuSan {full}/{total}, CuSan {cusan_only}/{total}, \
         MUST {must_only}/{total}, TSan {tsan_only}/{total}"
    );
    assert_eq!(full, total, "the full stack must catch every racy case");
    assert!(cusan_only < full, "CuSan alone misses MPI-side races");
    assert!(
        cusan_only > must_only,
        "most of this suite's races involve CUDA semantics"
    );
    assert!(must_only >= tsan_only);
    assert!(
        tsan_only * 4 <= total,
        "TSan alone sees neither CUDA nor MPI: {tsan_only}/{total}"
    );
}
